//! The store: a single file holding many named B+trees (tables) plus a
//! catalog on the meta page.
//!
//! TReX keeps its four tables — `Elements`, `PostingLists`, `RPLs`, `ERPLs` —
//! as tables of one store, mirroring the paper's use of BerkeleyDB databases
//! inside one environment.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::btree::{BTree, Cursor};
use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageId, HEADER_LEN, PAGE_SIZE};
use crate::pager::Pager;
use crate::wal::{CrashPoint, PendingIngest, RecoveryReport};

const MAGIC: &[u8; 8] = b"TREXSTOR";
const VERSION: u16 = 1;
/// Longest table name storable in the catalog.
pub const MAX_TABLE_NAME: usize = 64;

type Catalog = Arc<Mutex<HashMap<String, PageId>>>;

/// How to create or open a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    /// Whether to run with a write-ahead log (see [`crate::wal`]). On by
    /// default; off gives the pre-WAL write-in-place behaviour, where a
    /// crash mid-flush can corrupt the store.
    pub wal: bool,
    /// Crash injection armed before the store (and recovery, on open)
    /// touches the file: the nth occurrence of the crash point tears that
    /// operation and kills the store. Test instrumentation.
    pub inject_crash: Option<(CrashPoint, u32)>,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            pool_pages: 128,
            wal: true,
            inject_crash: None,
        }
    }
}

impl StoreOptions {
    /// Options with the given pool capacity (WAL on, no injection).
    pub fn with_pool(pool_pages: usize) -> StoreOptions {
        StoreOptions {
            pool_pages,
            ..StoreOptions::default()
        }
    }
}

/// A store file: buffer pool + table catalog.
pub struct Store {
    pool: Arc<BufferPool>,
    catalog: Catalog,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("pages", &self.pool.page_count())
            .field("tables", &self.table_names())
            .finish()
    }
}

impl Store {
    /// Creates a new store file (truncating an existing one), with a buffer
    /// pool of `pool_capacity` pages and a write-ahead log.
    pub fn create(path: &Path, pool_capacity: usize) -> Result<Store> {
        Self::create_with(path, StoreOptions::with_pool(pool_capacity))
    }

    /// Creates a new store file with explicit [`StoreOptions`].
    pub fn create_with(path: &Path, opts: StoreOptions) -> Result<Store> {
        let mut pager = if opts.wal {
            Pager::create_with_wal(path)?
        } else {
            Pager::create(path)?
        };
        if let Some((point, nth)) = opts.inject_crash {
            pager.inject_crash(point, nth);
        }
        let pool = Arc::new(BufferPool::new(pager, opts.pool_pages));
        let store = Store {
            pool,
            catalog: Arc::new(Mutex::new(HashMap::new())),
        };
        store.write_meta()?;
        Ok(store)
    }

    /// Opens an existing store file, running WAL redo recovery first (see
    /// [`crate::wal`]): an interrupted checkpoint is rolled forward if its
    /// log was sealed, rolled back otherwise — either way the store serves
    /// exactly its last durable checkpoint. [`Store::recovery_report`]
    /// says which, when recovery had anything to do.
    pub fn open(path: &Path, pool_capacity: usize) -> Result<Store> {
        Self::open_with(path, StoreOptions::with_pool(pool_capacity))
    }

    /// Opens an existing store file with explicit [`StoreOptions`].
    pub fn open_with(path: &Path, opts: StoreOptions) -> Result<Store> {
        let mut pager = if opts.wal {
            Pager::open_with_wal(path, opts.inject_crash)?
        } else {
            let mut p = Pager::open(path)?;
            if let Some((point, nth)) = opts.inject_crash {
                p.inject_crash(point, nth);
            }
            p
        };
        let (catalog, free_head) = {
            let mut meta = crate::page::PageBuf::zeroed();
            pager.read_page(0, &mut meta)?;
            Self::parse_meta(meta.bytes())?
        };
        pager.set_free_head(free_head);
        let pool = Arc::new(BufferPool::new(pager, opts.pool_pages));
        Ok(Store {
            pool,
            catalog: Arc::new(Mutex::new(catalog)),
        })
    }

    fn parse_meta(bytes: &[u8; PAGE_SIZE]) -> Result<(HashMap<String, PageId>, PageId)> {
        fn truncated(what: &str) -> StorageError {
            StorageError::Corrupt(format!("store catalog truncated reading {what}"))
        }
        let payload = &bytes[HEADER_LEN..];
        if payload.get(..8).ok_or_else(|| truncated("magic"))? != MAGIC {
            return Err(StorageError::Corrupt("bad store magic".into()));
        }
        let version = u16::from_le_bytes([payload[8], payload[9]]);
        if version != VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported store version {version}"
            )));
        }
        let free_head = u32::from_le_bytes(payload[10..14].try_into().unwrap());
        let count = u16::from_le_bytes([payload[14], payload[15]]) as usize;
        let mut catalog = HashMap::with_capacity(count.min(256));
        let mut off = 16usize;
        for _ in 0..count {
            // Every slice below is bounds-checked: a bit-flipped `count` or
            // `name_len` byte must surface as Corrupt, not a panic.
            let name_len = *payload.get(off).ok_or_else(|| truncated("name length"))? as usize;
            off += 1;
            let name_bytes = payload
                .get(off..off + name_len)
                .ok_or_else(|| truncated("table name"))?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| StorageError::Corrupt("non-utf8 table name".into()))?
                .to_string();
            off += name_len;
            let root_bytes = payload
                .get(off..off + 4)
                .ok_or_else(|| truncated("table root"))?;
            let root = u32::from_le_bytes(root_bytes.try_into().unwrap());
            off += 4;
            catalog.insert(name, root);
        }
        Ok((catalog, free_head))
    }

    fn write_meta(&self) -> Result<()> {
        let catalog = self.catalog.lock();
        let mut payload = Vec::with_capacity(PAGE_SIZE - HEADER_LEN);
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&VERSION.to_le_bytes());
        let free_head = self.pool.free_head();
        payload.extend_from_slice(&free_head.to_le_bytes());
        payload.extend_from_slice(&(catalog.len() as u16).to_le_bytes());
        let mut names: Vec<_> = catalog.iter().collect();
        names.sort(); // deterministic on-disk layout
        for (name, root) in names {
            payload.push(name.len() as u8);
            payload.extend_from_slice(name.as_bytes());
            payload.extend_from_slice(&root.to_le_bytes());
        }
        if payload.len() > PAGE_SIZE - HEADER_LEN {
            return Err(StorageError::CatalogFull);
        }
        drop(catalog);

        let meta = self.pool.fetch(0)?;
        {
            let mut buf = meta.buf.write();
            buf.bytes_mut()[HEADER_LEN..HEADER_LEN + payload.len()].copy_from_slice(&payload);
        }
        meta.mark_dirty();
        Ok(())
    }

    /// Creates a new empty table. Errors if the name exists or is too long.
    pub fn create_table(&self, name: &str) -> Result<Table> {
        if name.len() > MAX_TABLE_NAME {
            return Err(StorageError::KeyTooLarge(name.len()));
        }
        {
            let catalog = self.catalog.lock();
            if catalog.contains_key(name) {
                return Err(StorageError::TableExists(name.to_string()));
            }
        }
        let tree = BTree::create(self.pool.clone())?;
        self.catalog.lock().insert(name.to_string(), tree.root());
        Ok(Table {
            name: name.to_string(),
            tree,
            catalog: self.catalog.clone(),
        })
    }

    /// Creates a new table bulk-loaded from strictly ascending entries —
    /// far faster than repeated [`Table::insert`] for pre-sorted data (the
    /// posting lists are written this way).
    pub fn create_table_bulk(
        &self,
        name: &str,
        entries: impl Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<Table> {
        if name.len() > MAX_TABLE_NAME {
            return Err(StorageError::KeyTooLarge(name.len()));
        }
        if self.catalog.lock().contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        let tree = crate::btree::bulk_load(self.pool.clone(), entries)?;
        self.catalog.lock().insert(name.to_string(), tree.root());
        Ok(Table {
            name: name.to_string(),
            tree,
            catalog: self.catalog.clone(),
        })
    }

    /// Opens an existing table by name.
    pub fn open_table(&self, name: &str) -> Result<Table> {
        let root = self
            .catalog
            .lock()
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        Ok(Table {
            name: name.to_string(),
            tree: BTree::open(self.pool.clone(), root),
            catalog: self.catalog.clone(),
        })
    }

    /// Opens the table, creating it if absent.
    pub fn open_or_create_table(&self, name: &str) -> Result<Table> {
        match self.open_table(name) {
            Ok(t) => Ok(t),
            Err(StorageError::UnknownTable(_)) => self.create_table(name),
            Err(e) => Err(e),
        }
    }

    /// Whether a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.lock().contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Drops a table: removes it from the catalog and frees its pages.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let root = self
            .catalog
            .lock()
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        BTree::open(self.pool.clone(), root).destroy()
    }

    /// Persists the catalog and all dirty pages. With the WAL enabled this
    /// is a checkpoint: the catalog and every dirty page are appended to
    /// the log, sealed with a commit record, fsynced, folded into the data
    /// file, and the log is truncated. The whole flush lands atomically —
    /// a crash anywhere inside it reopens as either the previous or this
    /// checkpoint, never a mix.
    pub fn flush(&self) -> Result<()> {
        self.write_meta()?;
        self.pool.flush()
    }

    /// [`Store::flush`] whose checkpoint also consumes the WAL's pending
    /// ingest records with doc id below `ingest_watermark`. A fold calls
    /// this once after rewriting the tables: the folded pages and the
    /// ingest consumption commit in the same checkpoint, so recovery either
    /// sees the documents in the tables (roll forward) or back in the
    /// pending set (roll back) — never both, never neither.
    pub fn flush_consuming_ingests(&self, ingest_watermark: u64) -> Result<()> {
        self.write_meta()?;
        self.pool.flush_consuming_ingests(ingest_watermark)
    }

    /// Logs one ingested document to the WAL, fsynced — durable before the
    /// caller acknowledges the ingest. Returns `false` (no-op) for stores
    /// without a WAL, whose every write is volatile until [`Store::flush`]
    /// anyway.
    pub fn log_ingest(&self, doc_id: u32, xml: &[u8]) -> Result<bool> {
        self.pool.log_ingest(doc_id, xml)
    }

    /// The WAL's logged-but-not-yet-folded ingested documents, in log
    /// order. The index layer replays these into its delta index at open.
    pub fn pending_ingests(&self) -> Vec<PendingIngest> {
        self.pool.pending_ingests()
    }

    /// What WAL recovery did when this store was opened: `None` after a
    /// clean shutdown (or without a WAL), `Some` when a log had to be
    /// rolled forward (`completed_checkpoint`) or discarded.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.pool.recovery_report()
    }

    /// Arms crash injection (see [`CrashPoint`]): the nth occurrence of
    /// `point` tears that operation and kills the store — every later file
    /// operation errors, simulating a killed process. Test instrumentation.
    pub fn inject_crash(&self, point: CrashPoint, nth: u32) {
        self.pool.inject_crash(point, nth);
    }

    /// The shared buffer pool (exposed for I/O statistics in benchmarks).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The storage-layer observability counters (shared across the pager,
    /// buffer pool, and every B+-tree of this store).
    pub fn counters(&self) -> &Arc<trex_obs::StorageCounters> {
        self.pool.counters()
    }

    /// The storage-layer latency histograms (page read/write, fsync, WAL
    /// append, checkpoint), shared across the pager and buffer pool.
    pub fn timers(&self) -> &Arc<trex_obs::StorageTimers> {
        self.pool.timers()
    }

    /// Total pages in the store file — the disk-space measure used by the
    /// self-managing advisor (paper §4: `S_RPL`, `S_ERPL` are measured in
    /// disk space consumed).
    pub fn page_count(&self) -> u32 {
        self.pool.page_count()
    }
}

/// A named ordered (key → value) table inside a [`Store`].
pub struct Table {
    name: String,
    tree: BTree,
    catalog: Catalog,
}

impl Table {
    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts `key -> value`, replacing an existing binding.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let before = self.tree.root();
        self.tree.insert(key, value)?;
        let after = self.tree.root();
        if before != after {
            self.catalog.lock().insert(self.name.clone(), after);
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.tree.get(key)
    }

    /// Removes `key`; returns whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.tree.delete(key)
    }

    /// Cursor at the first entry with key `>= key`.
    pub fn seek(&self, key: &[u8]) -> Result<Cursor> {
        self.tree.seek(key)
    }

    /// Cursor at the smallest key.
    pub fn scan(&self) -> Result<Cursor> {
        self.tree.scan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("trex-store-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn tables_survive_reopen() {
        let path = temp("reopen");
        {
            let store = Store::create(&path, 64).unwrap();
            let mut t = store.create_table("elements").unwrap();
            for i in 0..500u32 {
                t.insert(&i.to_be_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            store.flush().unwrap();
        }
        let store = Store::open(&path, 64).unwrap();
        let t = store.open_table("elements").unwrap();
        assert_eq!(t.get(&42u32.to_be_bytes()).unwrap().unwrap(), b"v42");
        assert_eq!(t.get(&499u32.to_be_bytes()).unwrap().unwrap(), b"v499");
        assert!(t.get(&500u32.to_be_bytes()).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_duplicate_table_fails() {
        let path = temp("dup");
        let store = Store::create(&path, 64).unwrap();
        store.create_table("t").unwrap();
        assert!(matches!(
            store.create_table("t"),
            Err(StorageError::TableExists(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_table_errors() {
        let path = temp("unknown");
        let store = Store::create(&path, 64).unwrap();
        assert!(matches!(
            store.open_table("nope"),
            Err(StorageError::UnknownTable(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_table_frees_pages_for_reuse() {
        let path = temp("drop");
        let store = Store::create(&path, 64).unwrap();
        let mut t = store.create_table("big").unwrap();
        for i in 0..3000u32 {
            t.insert(&i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
        drop(t);
        let pages_before = store.page_count();
        store.drop_table("big").unwrap();
        assert!(!store.has_table("big"));
        // Recreating a similar table should not grow the file much, since
        // freed pages are reused.
        let mut t2 = store.create_table("big2").unwrap();
        for i in 0..3000u32 {
            t2.insert(&i.to_be_bytes(), &[0u8; 64]).unwrap();
        }
        assert!(store.page_count() <= pages_before + 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn catalog_tracks_root_splits_across_reopen() {
        let path = temp("rootsplit");
        {
            let store = Store::create(&path, 64).unwrap();
            let mut t = store.create_table("t").unwrap();
            // Enough entries to split the root several times.
            for i in 0..20_000u32 {
                t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
            }
            store.flush().unwrap();
        }
        let store = Store::open(&path, 64).unwrap();
        let t = store.open_table("t").unwrap();
        for i in (0..20_000u32).step_by(997) {
            assert_eq!(t.get(&i.to_be_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
        std::fs::remove_file(&path).ok();
    }

    /// A syntactically valid meta page with one catalog entry.
    fn valid_meta() -> Box<[u8; PAGE_SIZE]> {
        let mut bytes = Box::new([0u8; PAGE_SIZE]);
        let p = &mut bytes[HEADER_LEN..];
        p[..8].copy_from_slice(MAGIC);
        p[8..10].copy_from_slice(&VERSION.to_le_bytes());
        p[10..14].copy_from_slice(&7u32.to_le_bytes()); // free head
        p[14..16].copy_from_slice(&1u16.to_le_bytes()); // one entry
        p[16] = 8; // name_len
        p[17..25].copy_from_slice(b"elements");
        p[25..29].copy_from_slice(&3u32.to_le_bytes()); // root
        bytes
    }

    #[test]
    fn parse_meta_reads_a_valid_catalog() {
        let (catalog, free_head) = Store::parse_meta(&valid_meta()).unwrap();
        assert_eq!(free_head, 7);
        assert_eq!(catalog.get("elements"), Some(&3));
    }

    /// Regression for the unchecked-indexing panic: a bit-flipped `count`
    /// or `name_len` byte used to run `payload[off..off + n]` off the page
    /// end. Every corruption must now surface as `Corrupt`.
    #[test]
    fn parse_meta_rejects_corrupt_catalogs_without_panicking() {
        // Huge entry count: walks off the end of the payload.
        let mut m = valid_meta();
        m[HEADER_LEN + 14..HEADER_LEN + 16].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            Store::parse_meta(&m),
            Err(StorageError::Corrupt(_))
        ));

        // Catalog that walks off the page: enough zero-length entries to
        // push `off` past the payload end (each reads name_len + root, so
        // 2000 entries × 5 bytes > 8176 bytes of payload).
        let mut m = valid_meta();
        m[HEADER_LEN + 14..HEADER_LEN + 16].copy_from_slice(&2000u16.to_le_bytes());
        assert!(matches!(
            Store::parse_meta(&m),
            Err(StorageError::Corrupt(_))
        ));

        // A name slice overrunning the page end: fill the catalog area with
        // 'a' (0x61), so every entry parses as a 97-byte name + root until
        // one entry's name would cross the payload boundary.
        let mut m = valid_meta();
        m[HEADER_LEN + 14..HEADER_LEN + 16].copy_from_slice(&100u16.to_le_bytes());
        for b in m[HEADER_LEN + 16..].iter_mut() {
            *b = b'a'; // name_len 97 + name + root = 102 bytes per entry
        }
        assert!(matches!(
            Store::parse_meta(&m),
            Err(StorageError::Corrupt(_))
        ));

        // Each single-bit flip in the fixed header region must yield a
        // clean error (bad magic / version / truncation), never a panic.
        for byte in 0..16 {
            for bit in 0..8 {
                let mut m = valid_meta();
                m[HEADER_LEN + byte] ^= 1 << bit;
                let _ = Store::parse_meta(&m); // must not panic
            }
        }
    }

    #[test]
    fn table_names_are_sorted() {
        let path = temp("names");
        let store = Store::create(&path, 64).unwrap();
        store.create_table("zeta").unwrap();
        store.create_table("alpha").unwrap();
        assert_eq!(store.table_names(), vec!["alpha", "zeta"]);
        std::fs::remove_file(&path).ok();
    }
}
