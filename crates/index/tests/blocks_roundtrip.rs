//! Property tests of the block codec and the block-backed list tables:
//! encode→decode round-trips under arbitrary split policies, headers always
//! agree with their entries, and the skip-pointer seeks are byte-identical
//! to filtered full scans.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use trex_index::blocks::{
    decode_erpl_block, decode_rpl_block, encode_erpl_list, encode_rpl_list, normalize_erpl,
    normalize_rpl, peek_erpl_header, peek_rpl_header, BlockLimits,
};
use trex_index::{ElementRef, ErplTable, Position, RplEntry, RplTable};
use trex_storage::codec::inverted_score_bits;
use trex_storage::Store;

const TERM: u32 = 7;
const SID: u32 = 3;

/// Valid element spans: `length >= 1` and `start()` does not underflow.
fn element() -> impl Strategy<Value = ElementRef> {
    (0u32..8, 0u32..500)
        .prop_flat_map(|(doc, end)| (Just(doc), Just(end), 1..=end + 1))
        .prop_map(|(doc, end, length)| ElementRef { doc, end, length })
}

/// Quantised non-negative scores — exactly representable, and coarse enough
/// that random lists contain ties (which exercise dedup-keep-last).
fn score() -> impl Strategy<Value = f32> {
    (0u32..200).prop_map(|q| q as f32 * 0.25)
}

fn scored_list(max_len: usize) -> impl Strategy<Value = Vec<(ElementRef, f32)>> {
    proptest::collection::vec((element(), score()), 0..max_len)
}

/// Arbitrary split policies, down to one-entry / few-byte blocks.
fn limits() -> impl Strategy<Value = BlockLimits> {
    (1usize..=40, 4usize..=200).prop_map(|(max_entries, max_bytes)| BlockLimits {
        max_entries,
        max_bytes,
    })
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn with_store<R>(f: impl FnOnce(&Store) -> R) -> R {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let mut path = std::env::temp_dir();
    path.push(format!("trex-blocks-prop-{case}-{}", std::process::id()));
    let store = Store::create(&path, 128).unwrap();
    let r = f(&store);
    drop(store);
    std::fs::remove_file(&path).ok();
    r
}

fn drain_rpl(it: &mut trex_index::RplIter<'_>) -> Vec<RplEntry> {
    let mut out = Vec::new();
    while let Some(e) = it.next_entry().unwrap() {
        out.push(e);
    }
    out
}

fn drain_erpl(it: &mut trex_index::ErplIter<'_>) -> Vec<RplEntry> {
    let mut out = Vec::new();
    while let Some(e) = it.next_entry().unwrap() {
        out.push(e);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any list, split any way, decodes back to exactly its normalised form,
    /// and every block header agrees with the entries it fronts.
    #[test]
    fn prop_rpl_codec_round_trips_under_any_split(
        list in scored_list(300),
        limits in limits(),
    ) {
        let norm = normalize_rpl(&list);
        let blocks = encode_rpl_list(&norm, limits);
        prop_assert_eq!(blocks.is_empty(), norm.is_empty());

        let mut decoded: Vec<RplEntry> = Vec::new();
        for value in &blocks {
            let entries = decode_rpl_block(TERM, SID, value).unwrap();
            let header = peek_rpl_header(value).unwrap();
            prop_assert_eq!(header.count as usize, entries.len());
            prop_assert!(entries.len() <= limits.max_entries);
            prop_assert_eq!(
                header.first_inv,
                inverted_score_bits(entries[0].score),
                "header max is the first entry's score"
            );
            prop_assert_eq!(
                header.last_inv,
                inverted_score_bits(entries[entries.len() - 1].score),
                "header min (the skip bound) is the last entry's score"
            );
            decoded.extend(entries);
        }

        prop_assert_eq!(decoded.len(), norm.len());
        for (got, &(inv, e)) in decoded.iter().zip(&norm) {
            prop_assert_eq!(got.term, TERM);
            prop_assert_eq!(got.sid, SID);
            prop_assert_eq!(got.element, e);
            prop_assert_eq!(inverted_score_bits(got.score), inv);
        }
    }

    /// ERPL analogue: position order round-trips and headers carry the
    /// correct skip bound (last element position) and max score.
    #[test]
    fn prop_erpl_codec_round_trips_under_any_split(
        list in scored_list(300),
        limits in limits(),
    ) {
        let norm = normalize_erpl(&list);
        let blocks = encode_erpl_list(&norm, limits);
        prop_assert_eq!(blocks.is_empty(), norm.is_empty());

        let mut decoded: Vec<RplEntry> = Vec::new();
        for value in &blocks {
            let entries = decode_erpl_block(TERM, SID, value).unwrap();
            let (header, _) = peek_erpl_header(value).unwrap();
            prop_assert_eq!(header.count as usize, entries.len());
            prop_assert!(entries.len() <= limits.max_entries);
            prop_assert_eq!(header.first, entries[0].element.end_position());
            prop_assert_eq!(
                header.last,
                entries[entries.len() - 1].element.end_position(),
                "header last is the seek skip bound"
            );
            let max = entries.iter().map(|e| e.score).fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(header.max_score.to_bits(), max.to_bits());
            decoded.extend(entries);
        }

        prop_assert_eq!(decoded.len(), norm.len());
        for (got, &(e, s)) in decoded.iter().zip(&norm) {
            prop_assert_eq!(got.element, e);
            prop_assert_eq!(got.score.to_bits(), s.to_bits());
        }
    }
}

proptest! {
    // Table-level cases open a real store each, so run fewer of them.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Seeking the term-wide RPL merge iterator to a score bound yields
    /// byte-identical entries to a full scan with the high-score prefix
    /// dropped — for any pair of lists and any bound.
    #[test]
    fn prop_rpl_seek_equals_filtered_scan(
        a in scored_list(200),
        b in scored_list(200),
        bound in score(),
    ) {
        with_store(|store| {
            let mut t = RplTable::open(store).unwrap();
            t.put_list(TERM, 10, &a).unwrap();
            t.put_list(TERM, 20, &b).unwrap();

            let mut scan = t.iter_term(TERM).unwrap();
            let expected: Vec<RplEntry> = drain_rpl(&mut scan)
                .into_iter()
                .filter(|e| e.score <= bound)
                .collect();

            let mut seeked = t.iter_term(TERM).unwrap();
            seeked.seek_score_at_most(bound).unwrap();
            assert_eq!(drain_rpl(&mut seeked), expected, "bound {bound}");
        });
    }

    /// Seeking an ERPL iterator to a position yields byte-identical entries
    /// to a full scan with everything ending before it dropped.
    #[test]
    fn prop_erpl_seek_equals_filtered_scan(
        list in scored_list(300),
        doc in 0u32..8,
        offset in 0u32..500,
    ) {
        let pos = Position { doc, offset };
        with_store(|store| {
            let mut t = ErplTable::open(store).unwrap();
            t.put_list(TERM, SID, &list).unwrap();

            let mut scan = t.iter_list(TERM, SID).unwrap();
            let expected: Vec<RplEntry> = drain_erpl(&mut scan)
                .into_iter()
                .filter(|e| e.element.end_position() >= pos)
                .collect();

            let mut seeked = t.iter_list(TERM, SID).unwrap();
            seeked.seek(pos).unwrap();
            assert_eq!(drain_erpl(&mut seeked), expected, "pos {pos:?}");
        });
    }

    /// A put_list that fails partway through leaves the pair unmaterialised
    /// and rewritable, whatever the list shape and failure point.
    #[test]
    fn prop_failed_put_list_leaves_no_orphans(
        list in scored_list(400),
        fail_after in 0u32..6,
    ) {
        with_store(|store| {
            let mut t = RplTable::open(store).unwrap();
            t.fail_after_inserts(fail_after);
            let blocks = trex_index::blocks::rpl_list_size(&list).0 as u32;
            let result = t.put_list(TERM, SID, &list);
            if fail_after >= blocks {
                // Enough budget: the write succeeds and the injection arms
                // the *next* put instead — disarm by rewriting below.
                result.unwrap();
            } else {
                result.unwrap_err();
                assert!(!t.has_list(TERM, SID).unwrap());
                assert_eq!(t.total_bytes().unwrap(), 0);
                let mut it = t.iter_term(TERM).unwrap();
                assert!(it.next_entry().unwrap().is_none());
            }
            // The pair is always writable afterwards.
            t.fail_after_inserts(u32::MAX);
            t.put_list(TERM, SID, &list).unwrap();
            let norm = normalize_rpl(&list);
            let mut it = t.iter_term(TERM).unwrap();
            assert_eq!(drain_rpl(&mut it).len(), norm.len());
        });
    }
}
