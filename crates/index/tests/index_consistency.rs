//! Cross-checks the built index against naive recomputation from the raw
//! documents: postings, element spans, term statistics.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use trex_index::{IndexBuilder, Position, TrexIndex};
use trex_storage::Store;
use trex_summary::{AliasMap, SummaryKind};
use trex_text::{Analyzer, Token};
use trex_xml::{Document, NodeKind};

fn build(name: &str, docs: &[String]) -> (TrexIndex, std::path::PathBuf) {
    let mut path = std::env::temp_dir();
    path.push(format!("trex-consistency-{name}-{}", std::process::id()));
    let store = Store::create(&path, 128).unwrap();
    let mut builder = IndexBuilder::new(
        &store,
        SummaryKind::Incoming,
        AliasMap::identity(),
        Analyzer::default(),
    )
    .unwrap();
    for d in docs {
        builder.add_document(d).unwrap();
    }
    builder.finish().unwrap();
    (TrexIndex::open(Arc::new(store)).unwrap(), path)
}

/// Recomputes, per document, the analyzed token stream the way the indexer
/// is specified to see it: text nodes in document order, positions shared
/// with (skipped) stopwords.
fn naive_tokens(doc: &Document) -> Vec<Token> {
    let analyzer = Analyzer::default();
    let mut next = 0u32;
    let mut out = Vec::new();
    collect(doc, doc.root(), &analyzer, &mut next, &mut out);
    out
}

fn collect(
    doc: &Document,
    node: trex_xml::NodeId,
    analyzer: &Analyzer,
    next: &mut u32,
    out: &mut Vec<Token>,
) {
    match &doc.node(node).kind {
        NodeKind::Text(t) => {
            let (tokens, n) = analyzer.analyze_from(t, *next);
            *next = n;
            out.extend(tokens);
        }
        NodeKind::Element { .. } => {
            for &c in &doc.node(node).children {
                collect(doc, c, analyzer, next, out);
            }
        }
    }
}

#[test]
fn postings_match_naive_token_scan() {
    let docs: Vec<String> = vec![
        "<a><s>the quick brown fox</s><s>jumps over the lazy dog</s></a>".into(),
        "<a><s>quick quick slow</s><t>brown</t></a>".into(),
    ];
    let (index, path) = build("postings", &docs);

    // Naive per-term position lists.
    let mut naive: HashMap<String, Vec<Position>> = HashMap::new();
    for (doc_id, xml) in docs.iter().enumerate() {
        let doc = Document::parse(xml).unwrap();
        for token in naive_tokens(&doc) {
            naive.entry(token.text).or_default().push(Position {
                doc: doc_id as u32,
                offset: token.position,
            });
        }
    }

    let postings = index.postings().unwrap();
    for (term_text, positions) in &naive {
        let term = index
            .dictionary()
            .lookup(term_text)
            .unwrap_or_else(|| panic!("{term_text} missing from dictionary"));
        let mut it = postings.positions(term).unwrap();
        for &want in positions {
            assert_eq!(it.next_position().unwrap(), want, "term {term_text}");
        }
        assert!(it.next_position().unwrap().is_max());
        // Stats agree with the naive counts.
        let stats = index.term_stats(term).unwrap();
        assert_eq!(stats.cf as usize, positions.len(), "cf of {term_text}");
        let df_naive = positions
            .iter()
            .map(|p| p.doc)
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert_eq!(stats.df as usize, df_naive, "df of {term_text}");
    }
    // Dictionary has nothing beyond the naive vocabulary.
    assert_eq!(index.dictionary().len(), naive.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn element_spans_nest_consistently() {
    let docs: Vec<String> =
        vec!["<a><b>one two <c>three</c></b><d>four <e>five six</e> seven</d></a>".into()];
    let (index, path) = build("nesting", &docs);
    let summary = index.summary();
    let elements = index.elements().unwrap();

    // Gather all stored elements with their labels.
    let mut all = Vec::new();
    for sid in 1..=summary.node_count() as u32 {
        let mut it = elements.extent(sid).unwrap();
        while let Some(e) = it.next_element().unwrap() {
            all.push((summary.node(sid).label.clone(), e));
        }
    }
    // Spans must be laminar: any two either nest or are disjoint.
    for (la, a) in &all {
        for (lb, b) in &all {
            if a == b {
                continue;
            }
            let disjoint = a.end < b.start() || b.end < a.start();
            let a_in_b = b.start() <= a.start() && a.end <= b.end;
            let b_in_a = a.start() <= b.start() && b.end <= a.end;
            assert!(
                disjoint || a_in_b || b_in_a,
                "{la} {a:?} and {lb} {b:?} overlap without nesting"
            );
        }
    }
    // Root covers everything.
    let (_, root) = all.iter().find(|(l, _)| l == "a").unwrap();
    assert_eq!(root.start(), 0);
    assert_eq!(root.length, 7);
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random flat documents: the sum of extent sizes equals the number of
    /// non-empty elements, and every posting position lies inside its
    /// document's token range.
    #[test]
    fn prop_extents_and_positions_are_in_range(
        words in proptest::collection::vec(
            proptest::collection::vec("[a-z]{2,8}", 0..6),
            1..8,
        )
    ) {
        let docs: Vec<String> = words
            .iter()
            .map(|sections| {
                let body: String = sections
                    .iter()
                    .map(|w| format!("<s>{w}</s>"))
                    .collect();
                format!("<a>{body}</a>")
            })
            .collect();
        let suffix: u64 = words.iter().flatten().map(|w| w.len() as u64).sum();
        let (index, path) = build(&format!("prop-{suffix}-{}", words.len()), &docs);

        let postings = index.postings().unwrap();
        for (term, _text) in index.dictionary().iter().map(|(id, t)| (id, t.to_string())) {
            let mut it = postings.positions(term).unwrap();
            loop {
                let p = it.next_position().unwrap();
                if p.is_max() {
                    break;
                }
                prop_assert!((p.doc as usize) < docs.len());
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn streaming_and_dom_indexing_are_equivalent() {
    let docs: Vec<String> = vec![
        "<a><s>one two <b>three</b></s><s>four</s><empty/></a>".into(),
        "<a><!-- comment --><s>five <![CDATA[six]]></s><?pi data?></a>".into(),
    ];

    let build_with = |streaming: bool, name: &str| {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-streamvs-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut b = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::default(),
        )
        .unwrap();
        for d in &docs {
            if streaming {
                b.add_document_streaming(d).unwrap();
            } else {
                b.add_document(d).unwrap();
            }
        }
        b.finish().unwrap();
        (TrexIndex::open(Arc::new(store)).unwrap(), path)
    };
    let (dom, dom_path) = build_with(false, "dom");
    let (stream, stream_path) = build_with(true, "stream");

    // Identical catalogs.
    assert_eq!(dom.summary().node_count(), stream.summary().node_count());
    assert_eq!(dom.dictionary().len(), stream.dictionary().len());
    assert_eq!(dom.stats().element_count, stream.stats().element_count);
    assert_eq!(dom.stats().avg_element_len, stream.stats().avg_element_len);

    // Identical postings for every term.
    let dom_postings = dom.postings().unwrap();
    let stream_postings = stream.postings().unwrap();
    for (term, text) in dom.dictionary().iter() {
        let stream_term = stream.dictionary().lookup(text).unwrap();
        let mut a = dom_postings.positions(term).unwrap();
        let mut b = stream_postings.positions(stream_term).unwrap();
        loop {
            let (pa, pb) = (a.next_position().unwrap(), b.next_position().unwrap());
            assert_eq!(pa, pb, "term {text}");
            if pa.is_max() {
                break;
            }
        }
        assert_eq!(
            dom.term_stats(term).unwrap(),
            stream.term_stats(stream_term).unwrap()
        );
    }

    // Identical element rows.
    let mut a = dom.elements().unwrap().scan_all().unwrap();
    let mut b = stream.elements().unwrap().scan_all().unwrap();
    loop {
        let (ra, rb) = (a.next_row().unwrap(), b.next_row().unwrap());
        assert_eq!(ra, rb);
        if ra.is_none() {
            break;
        }
    }

    std::fs::remove_file(&dom_path).ok();
    std::fs::remove_file(&stream_path).ok();
}
