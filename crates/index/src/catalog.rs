//! Persisted index metadata: the term dictionary, the structural summary,
//! the alias mapping, collection statistics and per-term statistics.
//!
//! Large values (dictionary, summary) exceed the storage engine's value
//! limit, so they are stored as chunked *blobs* in a dedicated table.

use trex_storage::codec::{get_u32, get_u64, put_u32, put_u64};
use trex_storage::{Result, StorageError, Store, Table};
use trex_summary::{AliasMap, Summary};
use trex_text::{Analyzer, CollectionStats, Dictionary, TermId};

/// Name of the blob table.
pub const BLOBS_TABLE: &str = "blobs";
/// Name of the per-term statistics table.
pub const TERM_STATS_TABLE: &str = "term_stats";

/// Chunk size for blob storage (comfortably under `MAX_VALUE_LEN`).
const BLOB_CHUNK: usize = 1536;

/// Writes `bytes` as the blob `name`, replacing any previous content.
pub fn store_blob(table: &mut Table, name: &str, bytes: &[u8]) -> Result<()> {
    // Chunk 0 holds the total length so truncated writes are detectable.
    let chunks = bytes.chunks(BLOB_CHUNK);
    let mut header = Vec::with_capacity(8);
    put_u64(&mut header, bytes.len() as u64);
    table.insert(&blob_key(name, 0), &header)?;
    for (i, chunk) in chunks.enumerate() {
        table.insert(&blob_key(name, (i + 1) as u32), chunk)?;
    }
    Ok(())
}

/// Reads back the blob `name`.
pub fn load_blob(table: &Table, name: &str) -> Result<Option<Vec<u8>>> {
    let Some(header) = table.get(&blob_key(name, 0))? else {
        return Ok(None);
    };
    let total = get_u64(&header, 0)? as usize;
    let mut out = Vec::with_capacity(total);
    let mut i = 1u32;
    while out.len() < total {
        let Some(chunk) = table.get(&blob_key(name, i))? else {
            return Err(StorageError::Corrupt(format!("blob {name} truncated")));
        };
        out.extend_from_slice(&chunk);
        i += 1;
    }
    if out.len() != total {
        return Err(StorageError::Corrupt(format!(
            "blob {name} length mismatch"
        )));
    }
    Ok(Some(out))
}

fn blob_key(name: &str, chunk: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(name.len() + 5);
    k.extend_from_slice(name.as_bytes());
    k.push(0);
    put_u32(&mut k, chunk);
    k
}

// ---------------------------------------------------------------------------
// Collection statistics
// ---------------------------------------------------------------------------

/// Serialises [`CollectionStats`].
pub fn encode_stats(stats: &CollectionStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&stats.doc_count.to_le_bytes());
    out.extend_from_slice(&stats.element_count.to_le_bytes());
    out.extend_from_slice(&stats.avg_element_len.to_le_bytes());
    out
}

/// Inverse of [`encode_stats`].
pub fn decode_stats(bytes: &[u8]) -> Result<CollectionStats> {
    if bytes.len() < 16 {
        return Err(StorageError::Corrupt("short stats blob".into()));
    }
    Ok(CollectionStats {
        doc_count: u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
        element_count: u64::from_le_bytes(bytes[4..12].try_into().unwrap()),
        avg_element_len: f32::from_le_bytes(bytes[12..16].try_into().unwrap()),
    })
}

/// Serialises an alias map.
pub fn encode_alias(alias: &AliasMap) -> Vec<u8> {
    let pairs = alias.pairs();
    let mut out = Vec::new();
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (from, to) in pairs {
        for s in [&from, &to] {
            out.extend_from_slice(&(s.len() as u16).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

/// Inverse of [`encode_alias`].
pub fn decode_alias(bytes: &[u8]) -> Result<AliasMap> {
    let corrupt = || StorageError::Corrupt("bad alias blob".into());
    let count = u32::from_le_bytes(bytes.get(..4).ok_or_else(corrupt)?.try_into().unwrap());
    let mut off = 4usize;
    let mut pairs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let read = |off: &mut usize| -> Result<String> {
            let len = u16::from_le_bytes(
                bytes
                    .get(*off..*off + 2)
                    .ok_or_else(corrupt)?
                    .try_into()
                    .unwrap(),
            ) as usize;
            *off += 2;
            let s = std::str::from_utf8(bytes.get(*off..*off + len).ok_or_else(corrupt)?)
                .map_err(|_| corrupt())?
                .to_string();
            *off += len;
            Ok(s)
        };
        let from = read(&mut off)?;
        let to = read(&mut off)?;
        pairs.push((from, to));
    }
    Ok(AliasMap::from_pairs(pairs))
}

// ---------------------------------------------------------------------------
// Per-term statistics
// ---------------------------------------------------------------------------

/// Document frequency and collection frequency of one term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TermStats {
    /// Documents containing the term.
    pub df: u32,
    /// Total occurrences across the collection.
    pub cf: u64,
}

/// Writes the stats of `term`.
pub fn put_term_stats(table: &mut Table, term: TermId, stats: TermStats) -> Result<()> {
    let mut k = Vec::with_capacity(4);
    put_u32(&mut k, term);
    let mut v = Vec::with_capacity(12);
    put_u32(&mut v, stats.df);
    put_u64(&mut v, stats.cf);
    table.insert(&k, &v)
}

/// Reads the stats of `term` (zero when absent).
pub fn get_term_stats(table: &Table, term: TermId) -> Result<TermStats> {
    let mut k = Vec::with_capacity(4);
    put_u32(&mut k, term);
    match table.get(&k)? {
        Some(v) => Ok(TermStats {
            df: get_u32(&v, 0)?,
            cf: get_u64(&v, 4)?,
        }),
        None => Ok(TermStats::default()),
    }
}

/// Serialises the analyzer configuration.
pub fn encode_analyzer(analyzer: &Analyzer) -> Vec<u8> {
    vec![analyzer.remove_stopwords as u8, analyzer.stem as u8]
}

/// Inverse of [`encode_analyzer`].
pub fn decode_analyzer(bytes: &[u8]) -> Result<Analyzer> {
    if bytes.len() < 2 {
        return Err(StorageError::Corrupt("short analyzer blob".into()));
    }
    Ok(Analyzer {
        remove_stopwords: bytes[0] != 0,
        stem: bytes[1] != 0,
    })
}

/// Blob names used by the builder / reader.
pub mod blob_names {
    /// The term dictionary.
    pub const DICTIONARY: &str = "dictionary";
    /// The structural summary used for query translation.
    pub const SUMMARY: &str = "summary";
    /// The alias map the summary was built with.
    pub const ALIAS: &str = "alias";
    /// Collection statistics.
    pub const STATS: &str = "stats";
    /// The analyzer configuration the collection was indexed with.
    pub const ANALYZER: &str = "analyzer";
    /// High-water mark of live-ingested document ids folded to disk
    /// (`u32` LE). Absent on stores that never folded a delta.
    pub const NEXT_DOC_ID: &str = "next_doc_id";
}

/// Reads the persisted next-document-id high-water mark, if any.
pub fn load_next_doc_id(store: &Store) -> Result<Option<u32>> {
    let blobs = store.open_table(BLOBS_TABLE)?;
    Ok(load_blob(&blobs, blob_names::NEXT_DOC_ID)?.and_then(|b| {
        b.get(..4)
            .map(|x| u32::from_le_bytes(x.try_into().unwrap()))
    }))
}

/// Persists the next-document-id high-water mark (called by the fold).
pub fn store_next_doc_id(table: &mut Table, next: u32) -> Result<()> {
    store_blob(table, blob_names::NEXT_DOC_ID, &next.to_le_bytes())
}

/// Loads the full catalog (dictionary, summary, alias, stats, analyzer)
/// from a store.
pub fn load_catalog(
    store: &Store,
) -> Result<(Dictionary, Summary, AliasMap, CollectionStats, Analyzer)> {
    let blobs = store.open_table(BLOBS_TABLE)?;
    let corrupt = |what: &str| StorageError::Corrupt(format!("missing or bad {what} blob"));
    let dict_bytes =
        load_blob(&blobs, blob_names::DICTIONARY)?.ok_or_else(|| corrupt("dictionary"))?;
    let dictionary = Dictionary::decode(&dict_bytes).ok_or_else(|| corrupt("dictionary"))?;
    let summary_bytes =
        load_blob(&blobs, blob_names::SUMMARY)?.ok_or_else(|| corrupt("summary"))?;
    let summary = Summary::decode(&summary_bytes).ok_or_else(|| corrupt("summary"))?;
    let alias_bytes = load_blob(&blobs, blob_names::ALIAS)?.ok_or_else(|| corrupt("alias"))?;
    let alias = decode_alias(&alias_bytes)?;
    let stats_bytes = load_blob(&blobs, blob_names::STATS)?.ok_or_else(|| corrupt("stats"))?;
    let stats = decode_stats(&stats_bytes)?;
    // Older stores without the blob default to the standard pipeline.
    let analyzer = match load_blob(&blobs, blob_names::ANALYZER)? {
        Some(bytes) => decode_analyzer(&bytes)?,
        None => Analyzer::default(),
    };
    Ok((dictionary, summary, alias, stats, analyzer))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_store<R>(name: &str, f: impl FnOnce(&Store) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-catalog-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let r = f(&store);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    #[test]
    fn blob_round_trip_small_and_large() {
        with_store("blob", |store| {
            let mut t = store.create_table(BLOBS_TABLE).unwrap();
            store_blob(&mut t, "small", b"hello").unwrap();
            let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
            store_blob(&mut t, "big", &big).unwrap();
            assert_eq!(load_blob(&t, "small").unwrap().unwrap(), b"hello");
            assert_eq!(load_blob(&t, "big").unwrap().unwrap(), big);
            assert!(load_blob(&t, "absent").unwrap().is_none());
        });
    }

    #[test]
    fn blob_overwrite_uses_new_length() {
        with_store("overwrite", |store| {
            let mut t = store.create_table(BLOBS_TABLE).unwrap();
            store_blob(&mut t, "x", &vec![7u8; 5000]).unwrap();
            store_blob(&mut t, "x", b"tiny").unwrap();
            assert_eq!(load_blob(&t, "x").unwrap().unwrap(), b"tiny");
        });
    }

    #[test]
    fn stats_round_trip() {
        let s = CollectionStats {
            doc_count: 42,
            element_count: 1234,
            avg_element_len: 56.5,
        };
        assert_eq!(decode_stats(&encode_stats(&s)).unwrap(), s);
        assert!(decode_stats(&[1, 2, 3]).is_err());
    }

    #[test]
    fn alias_round_trip() {
        let alias = AliasMap::inex_ieee();
        let back = decode_alias(&encode_alias(&alias)).unwrap();
        assert_eq!(back.pairs(), alias.pairs());
        assert!(decode_alias(&[0, 0]).is_err());
    }

    #[test]
    fn term_stats_round_trip_and_default() {
        with_store("termstats", |store| {
            let mut t = store.create_table(TERM_STATS_TABLE).unwrap();
            put_term_stats(&mut t, 9, TermStats { df: 3, cf: 17 }).unwrap();
            assert_eq!(get_term_stats(&t, 9).unwrap(), TermStats { df: 3, cf: 17 });
            assert_eq!(get_term_stats(&t, 10).unwrap(), TermStats::default());
        });
    }
}
