//! # trex-index
//!
//! The four TReX tables (paper §2.2) over `trex-storage`, the index builder,
//! and the persisted catalog:
//!
//! * [`elements::ElementsTable`] — `Elements(SID, docid, endpos, length)`
//! * [`postings::PostingsTable`] — `PostingLists(token, docid, offset, …)`
//! * [`rpl::RplTable`] — `RPLs(token, ir, SID, docid, endpos, …)` in
//!   descending relevance order
//! * [`erpl::ErplTable`] — `ERPLs(token, SID, docid, endpos, ir, …)` in
//!   position order
//!
//! [`build::IndexBuilder`] populates the first two plus the catalog from raw
//! XML; the redundant RPL/ERPL lists are materialised later by the
//! self-managing layer in `trex-core`.

pub mod blocks;
pub mod build;
pub mod catalog;
pub mod delta;
pub mod docstore;
pub mod elements;
pub mod encode;
pub mod erpl;
pub mod maintenance;
pub mod postings;
pub mod registry;
pub mod rpl;

use std::fmt;
use std::sync::Arc;

use trex_storage::{StorageError, Store};
use trex_summary::{AliasMap, Summary};
use trex_text::{Analyzer, CollectionStats, Dictionary, ScoringParams, TermId};

pub use build::IndexBuilder;
pub use catalog::TermStats;
pub use delta::{DeltaDoc, DeltaIndex, DeltaMatch};
pub use docstore::{DocStore, DocStoreWriter};
pub use elements::{ElementIter, ElementsTable};
pub use encode::{ElementRef, Position, RplEntry};
pub use erpl::{ErplIter, ErplTable};
pub use maintenance::Maintenance;
pub use postings::{PositionIter, PostingsTable};
pub use registry::ListStats;
pub use rpl::{RplIter, RplTable};

/// Errors from index construction and access.
#[derive(Debug)]
pub enum IndexError {
    /// A document failed to parse.
    Xml(trex_xml::XmlError),
    /// The storage engine failed.
    Storage(StorageError),
    /// Live ingestion has allocated every representable document id; the
    /// collection must be rebuilt with a wider id space.
    DocIdsExhausted,
    /// An ingested document uses an element path the frozen structural
    /// summary does not contain (the offending label is attached).
    UnknownPath(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Xml(e) => write!(f, "xml error: {e}"),
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::DocIdsExhausted => write!(f, "document id space exhausted"),
            IndexError::UnknownPath(label) => {
                write!(f, "element path not in structural summary: <{label}>")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Xml(e) => Some(e),
            IndexError::Storage(e) => Some(e),
            IndexError::DocIdsExhausted | IndexError::UnknownPath(_) => None,
        }
    }
}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IndexError>;

/// The partition a document belongs to, for an `N`-way partitioned system.
///
/// Both the builder (routing documents at build time) and the partitioned
/// system (routing live ingests) call this one function, so a document's
/// home partition is a pure function of its **global** id — stable across
/// rebuilds, reopens and partition-count probes. Sequential ids are spread
/// with a [SplitMix64 finalizer](https://prng.di.unimi.it/splitmix64.c)
/// rather than `id % N` so that contiguous runs of related documents (a
/// corpus is usually loaded in order) do not stripe systematically.
///
/// `partitions <= 1` always maps to partition 0.
pub fn partition_of(doc_id: u32, partitions: usize) -> usize {
    if partitions <= 1 {
        return 0;
    }
    let mut x = u64::from(doc_id) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % partitions as u64) as usize
}

/// Read handle over a fully built index: catalog in memory, tables opened on
/// demand.
pub struct TrexIndex {
    store: Arc<Store>,
    dictionary: Dictionary,
    summary: Summary,
    alias: AliasMap,
    stats: CollectionStats,
    analyzer: Analyzer,
    scoring: ScoringParams,
    /// Shared decode counters; every table opened through this handle
    /// reports into the same group, so one snapshot covers all index work.
    obs: Arc<trex_obs::IndexCounters>,
    /// Gate between query evaluation and online list maintenance.
    maintenance: Arc<Maintenance>,
    /// Query-path telemetry (latency histograms, span journal, slow-query
    /// log), shared with the engine and the self-manager above.
    telemetry: Arc<trex_obs::Telemetry>,
    /// The live-ingestion overlay; see [`delta::DeltaIndex`].
    delta: Arc<DeltaIndex>,
}

impl TrexIndex {
    /// Opens the index stored in `store` (catalog blobs must exist, i.e.
    /// [`IndexBuilder::finish`] must have run). Any ingest records the WAL
    /// recovered are replayed into the delta, so acknowledged documents are
    /// queryable again immediately after a crash.
    pub fn open(store: Arc<Store>) -> Result<TrexIndex> {
        let (dictionary, summary, alias, stats, analyzer) = catalog::load_catalog(&store)?;
        let telemetry = Arc::new(trex_obs::Telemetry::new());
        // Ids resume after everything already folded to disk: the fold
        // persists its high-water mark as a catalog blob; stores that never
        // folded fall back to the built document count.
        let base_next = catalog::load_next_doc_id(&store)?
            .unwrap_or(0)
            .max(stats.doc_count);
        let delta = Arc::new(DeltaIndex::new(base_next));
        for pending in store.pending_ingests() {
            let xml = std::str::from_utf8(&pending.xml).map_err(|_| {
                IndexError::Storage(StorageError::Corrupt(format!(
                    "ingest record for doc {} is not UTF-8",
                    pending.doc_id
                )))
            })?;
            let staged = delta::stage_document(
                pending.doc_id,
                xml,
                &summary,
                &alias,
                &dictionary,
                analyzer,
            )?;
            delta.note_recovered(staged);
        }
        Ok(TrexIndex {
            store,
            dictionary,
            summary,
            alias,
            stats,
            analyzer,
            scoring: ScoringParams::default(),
            obs: Arc::new(trex_obs::IndexCounters::new()),
            maintenance: Arc::new(Maintenance::with_telemetry(telemetry.clone())),
            telemetry,
            delta,
        })
    }

    /// The live-ingestion delta overlay.
    pub fn delta(&self) -> &Arc<DeltaIndex> {
        &self.delta
    }

    /// Ingests one document into the live index: allocates the next id,
    /// stages the document against the frozen catalog, logs it to the WAL
    /// (durability point — the call only returns once the record is
    /// fsynced), then publishes it to the delta under the maintenance write
    /// gate so the generation bump invalidates result caches.
    ///
    /// Fails with [`IndexError::DocIdsExhausted`] at the id-space boundary
    /// and [`IndexError::UnknownPath`] for documents whose structure the
    /// frozen summary cannot place; neither consumes an id or writes state.
    pub fn ingest_document(&self, xml: &str) -> Result<u32> {
        let _serial = self.delta.ingest_guard();
        let doc_id = self.delta.peek_next_doc_id()?;
        self.ingest_staged(doc_id, xml)?;
        Ok(doc_id)
    }

    /// Ingests one document under a caller-chosen id. Used by partitioned
    /// systems, where a global allocator hands out ids across stores and
    /// routes each document to exactly one partition — the partition-local
    /// watermark then advances past `doc_id` so a later single-store open
    /// of the same file never re-allocates it.
    ///
    /// The caller is responsible for never reusing an id; ids may arrive
    /// with gaps (the gap belongs to sibling partitions). Same failure
    /// modes as [`ingest_document`](TrexIndex::ingest_document), plus
    /// [`IndexError::DocIdsExhausted`] if `doc_id` is the `u32::MAX`
    /// sentinel.
    pub fn ingest_document_with_id(&self, doc_id: u32, xml: &str) -> Result<()> {
        if doc_id == u32::MAX {
            return Err(IndexError::DocIdsExhausted);
        }
        let _serial = self.delta.ingest_guard();
        self.ingest_staged(doc_id, xml)
    }

    /// Stages, WAL-logs and publishes one document under `doc_id`. Caller
    /// holds the ingest guard.
    fn ingest_staged(&self, doc_id: u32, xml: &str) -> Result<()> {
        let staged = delta::stage_document(
            doc_id,
            xml,
            &self.summary,
            &self.alias,
            &self.dictionary,
            self.analyzer,
        )?;
        self.store.log_ingest(doc_id, xml.as_bytes())?;
        {
            let _gate = self.maintenance.enter_write();
            self.delta.apply(staged);
        }
        Ok(())
    }

    /// The maintenance gate coordinating query evaluation with online
    /// redundant-list mutation (see [`Maintenance`] for the protocol).
    pub fn maintenance(&self) -> &Maintenance {
        &self.maintenance
    }

    /// The term dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The structural summary used for translation.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The alias mapping the summary was built with.
    pub fn alias(&self) -> &AliasMap {
        &self.alias
    }

    /// Collection statistics.
    pub fn stats(&self) -> &CollectionStats {
        &self.stats
    }

    /// The analyzer the collection was indexed with (persisted in the
    /// catalog so query-time analysis always matches index-time analysis).
    pub fn analyzer(&self) -> Analyzer {
        self.analyzer
    }

    /// The scoring parameters (BM25 `k1`/`b`).
    pub fn scoring(&self) -> &ScoringParams {
        &self.scoring
    }

    /// Replaces the scoring parameters.
    pub fn set_scoring(&mut self, params: ScoringParams) {
        self.scoring = params;
    }

    /// The underlying store (I/O statistics, page counts).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The index-layer decode counters shared by every table this handle
    /// opens. Pair with [`Store::counters`] snapshots for a full query trace.
    pub fn counters(&self) -> &Arc<trex_obs::IndexCounters> {
        &self.obs
    }

    /// The query-path telemetry: latency histograms (query, strategy,
    /// maintenance), the span journal, and the slow-query log. The gate
    /// returned by [`TrexIndex::maintenance`] records its wait times here.
    pub fn telemetry(&self) -> &Arc<trex_obs::Telemetry> {
        &self.telemetry
    }

    /// Opens the `Elements` table.
    pub fn elements(&self) -> Result<ElementsTable> {
        Ok(ElementsTable::new(
            self.store.open_table(elements::ELEMENTS_TABLE)?,
        ))
    }

    /// Opens the `PostingLists` table.
    pub fn postings(&self) -> Result<PostingsTable> {
        Ok(
            PostingsTable::new(self.store.open_table(postings::POSTINGS_TABLE)?)
                .with_counters(self.obs.clone()),
        )
    }

    /// Opens the `RPLs` table (created on first use).
    pub fn rpls(&self) -> Result<RplTable> {
        Ok(RplTable::open(&self.store)?.with_counters(self.obs.clone()))
    }

    /// Opens the `ERPLs` table (created on first use).
    pub fn erpls(&self) -> Result<ErplTable> {
        Ok(ErplTable::open(&self.store)?.with_counters(self.obs.clone()))
    }

    /// Opens the document store, if the index was built with
    /// [`build::IndexBuilder::enable_document_store`].
    pub fn documents(&self) -> Result<Option<DocStore>> {
        if !self.store.has_table(docstore::DOCUMENTS_TABLE) {
            return Ok(None);
        }
        Ok(Some(DocStore::open(&self.store)?))
    }

    /// Per-term statistics (df, cf); zero for unknown terms.
    pub fn term_stats(&self, term: TermId) -> Result<TermStats> {
        let table = self.store.open_table(catalog::TERM_STATS_TABLE)?;
        Ok(catalog::get_term_stats(&table, term)?)
    }

    /// Scores one (element, term) pair with the index's model — the `ir`
    /// value stored in RPL/ERPL entries.
    pub fn score(&self, tf: u32, term: TermId, element_len: u32) -> Result<f32> {
        let ts = self.term_stats(term)?;
        Ok(trex_text::score(
            &self.scoring,
            &self.stats,
            tf,
            ts.df,
            element_len,
        ))
    }
}
