//! The `Elements` table and its per-sid iterator.
//!
//! ERA consumes elements through exactly the two operations of paper §3.2:
//! `firstElement()` and `nextElementAfter(p)`, both of which the B+tree
//! serves with a seek followed by sequential reads.

use trex_storage::{Result, Table};
use trex_summary::Sid;

use crate::encode::{
    decode_elements_key, decode_elements_value, elements_key, elements_value, ElementRef, Position,
};

/// Name of the table inside the store.
pub const ELEMENTS_TABLE: &str = "elements";

/// Write/read access to the `Elements` table.
pub struct ElementsTable {
    table: Table,
}

/// An element together with its sid, as stored in `Elements`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementRow {
    /// Summary node of the element.
    pub sid: Sid,
    /// The element.
    pub element: ElementRef,
}

impl ElementsTable {
    /// Wraps an open storage table.
    pub fn new(table: Table) -> ElementsTable {
        ElementsTable { table }
    }

    /// Inserts one element.
    pub fn insert(&mut self, sid: Sid, element: ElementRef) -> Result<()> {
        debug_assert!(element.length > 0, "empty elements are not indexed");
        self.table.insert(
            &elements_key(sid, element.doc, element.end),
            &elements_value(element.length),
        )
    }

    /// Iterator over the extent of `sid`, in end-position order.
    pub fn extent(&self, sid: Sid) -> Result<ElementIter> {
        let cursor = self.table.seek(&elements_key(sid, 0, 0))?;
        Ok(ElementIter { cursor, sid })
    }

    /// The paper's `I_s.nextElementAfter(p)` as a standalone seek: the
    /// element of `sid`'s extent with the lowest end position `> p`, or the
    /// dummy element at `m-pos` when none exists.
    pub fn next_element_after(&self, sid: Sid, p: Position) -> Result<Option<ElementRef>> {
        let succ = p.successor();
        let mut cursor = self.table.seek(&elements_key(sid, succ.doc, succ.offset))?;
        match cursor.next_entry()? {
            Some((key, value)) => {
                let (found_sid, doc, end) = decode_elements_key(&key)?;
                if found_sid != sid {
                    return Ok(None);
                }
                let length = decode_elements_value(&value)?;
                Ok(Some(ElementRef { doc, end, length }))
            }
            None => Ok(None),
        }
    }

    /// Like [`ElementsTable::next_element_after`], but inclusive: the element
    /// with the lowest end position `>= p`. This is what ERA needs when it
    /// jumps an extent iterator forward to the current term position — an
    /// element ending exactly *at* the position still contains it.
    pub fn next_element_at_or_after(&self, sid: Sid, p: Position) -> Result<Option<ElementRef>> {
        let mut cursor = self.table.seek(&elements_key(sid, p.doc, p.offset))?;
        match cursor.next_entry()? {
            Some((key, value)) => {
                let (found_sid, doc, end) = decode_elements_key(&key)?;
                if found_sid != sid {
                    return Ok(None);
                }
                let length = decode_elements_value(&value)?;
                Ok(Some(ElementRef { doc, end, length }))
            }
            None => Ok(None),
        }
    }

    /// Total number of elements for `sid` (walks the extent; used by tests
    /// and statistics, not by query evaluation).
    pub fn extent_size(&self, sid: Sid) -> Result<u64> {
        let mut iter = self.extent(sid)?;
        let mut n = 0;
        while iter.next_element()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Full-table scan in key order (sid, doc, end).
    pub fn scan_all(&self) -> Result<AllElementsIter> {
        Ok(AllElementsIter {
            cursor: self.table.scan()?,
        })
    }
}

/// Iterator over one sid's extent — the paper's `I_s`.
pub struct ElementIter {
    cursor: trex_storage::Cursor,
    sid: Sid,
}

impl ElementIter {
    /// The next element in end-position order, or `None` when the extent is
    /// exhausted (the paper returns a dummy element at `m-pos`; callers in
    /// `trex-core` translate `None` accordingly).
    pub fn next_element(&mut self) -> Result<Option<ElementRef>> {
        match self.cursor.next_entry()? {
            Some((key, value)) => {
                let (sid, doc, end) = decode_elements_key(&key)?;
                if sid != self.sid {
                    return Ok(None); // walked past this extent
                }
                let length = decode_elements_value(&value)?;
                Ok(Some(ElementRef { doc, end, length }))
            }
            None => Ok(None),
        }
    }
}

/// Iterator over the whole table.
pub struct AllElementsIter {
    cursor: trex_storage::Cursor,
}

impl AllElementsIter {
    /// The next row in key order.
    pub fn next_row(&mut self) -> Result<Option<ElementRow>> {
        match self.cursor.next_entry()? {
            Some((key, value)) => {
                let (sid, doc, end) = decode_elements_key(&key)?;
                let length = decode_elements_value(&value)?;
                Ok(Some(ElementRow {
                    sid,
                    element: ElementRef { doc, end, length },
                }))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_storage::Store;

    fn with_table<R>(name: &str, f: impl FnOnce(&mut ElementsTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-elements-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t = ElementsTable::new(store.create_table(ELEMENTS_TABLE).unwrap());
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn el(doc: u32, end: u32, length: u32) -> ElementRef {
        ElementRef { doc, end, length }
    }

    #[test]
    fn extent_iterates_in_end_position_order() {
        with_table("order", |t| {
            t.insert(7, el(1, 50, 10)).unwrap();
            t.insert(7, el(0, 30, 5)).unwrap();
            t.insert(7, el(1, 20, 3)).unwrap();
            t.insert(8, el(0, 10, 2)).unwrap(); // other sid, must not appear
            let mut iter = t.extent(7).unwrap();
            let mut got = Vec::new();
            while let Some(e) = iter.next_element().unwrap() {
                got.push((e.doc, e.end));
            }
            assert_eq!(got, vec![(0, 30), (1, 20), (1, 50)]);
        });
    }

    #[test]
    fn next_element_after_seeks_strictly_past() {
        with_table("seek", |t| {
            t.insert(3, el(0, 10, 2)).unwrap();
            t.insert(3, el(0, 20, 2)).unwrap();
            t.insert(3, el(1, 5, 2)).unwrap();
            let next = |doc, offset| {
                t.next_element_after(3, Position { doc, offset })
                    .unwrap()
                    .map(|e| (e.doc, e.end))
            };
            assert_eq!(next(0, 9), Some((0, 10)));
            assert_eq!(next(0, 10), Some((0, 20)), "strictly after");
            assert_eq!(next(0, 25), Some((1, 5)));
            assert_eq!(next(1, 5), None, "past the extent");
        });
    }

    #[test]
    fn empty_extent_yields_nothing() {
        with_table("empty", |t| {
            t.insert(1, el(0, 4, 5)).unwrap();
            let mut iter = t.extent(99).unwrap();
            assert!(iter.next_element().unwrap().is_none());
            assert_eq!(t.extent_size(99).unwrap(), 0);
        });
    }

    #[test]
    fn scan_all_orders_by_sid_first() {
        with_table("all", |t| {
            t.insert(5, el(0, 1, 1)).unwrap();
            t.insert(2, el(9, 9, 1)).unwrap();
            let mut iter = t.scan_all().unwrap();
            let mut got = Vec::new();
            while let Some(row) = iter.next_row().unwrap() {
                got.push(row.sid);
            }
            assert_eq!(got, vec![2, 5]);
        });
    }
}
