//! Registry of materialised (term, sid) lists.
//!
//! The self-managing advisor (paper §4) must know, for each query, whether
//! the RPLs / ERPLs it needs already exist and how much disk they occupy
//! (`S_RPL(Q)`, `S_ERPL(Q)`). Each redundant table therefore maintains a
//! registry table mapping `(term, sid)` to the entry count and byte size of
//! its materialised list.

use trex_storage::codec::{get_u32, get_u64, put_u32, put_u64};
use trex_storage::{Result, Table};
use trex_summary::Sid;
use trex_text::TermId;

/// Size bookkeeping for one materialised list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ListStats {
    /// Number of (element) entries in the list.
    pub entries: u64,
    /// Bytes of key + value data the list occupies.
    pub bytes: u64,
    /// Number of block records the list is stored as. Block keys are dense
    /// (`0..blocks`), so dropping a list is `blocks` point deletes.
    pub blocks: u64,
}

/// A registry table.
pub struct ListRegistry {
    table: Table,
}

impl ListRegistry {
    /// Wraps an open storage table.
    pub fn new(table: Table) -> ListRegistry {
        ListRegistry { table }
    }

    fn key(term: TermId, sid: Sid) -> Vec<u8> {
        let mut k = Vec::with_capacity(8);
        put_u32(&mut k, term);
        put_u32(&mut k, sid);
        k
    }

    /// Records (replaces) the stats of list `(term, sid)`.
    pub fn put(&mut self, term: TermId, sid: Sid, stats: ListStats) -> Result<()> {
        let mut v = Vec::with_capacity(24);
        put_u64(&mut v, stats.entries);
        put_u64(&mut v, stats.bytes);
        put_u64(&mut v, stats.blocks);
        self.table.insert(&Self::key(term, sid), &v)
    }

    fn decode_stats(v: &[u8]) -> Result<ListStats> {
        Ok(ListStats {
            entries: get_u64(v, 0)?,
            bytes: get_u64(v, 8)?,
            blocks: get_u64(v, 16)?,
        })
    }

    /// Stats of list `(term, sid)`, or `None` if not materialised.
    pub fn get(&self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        match self.table.get(&Self::key(term, sid))? {
            Some(v) => Ok(Some(Self::decode_stats(&v)?)),
            None => Ok(None),
        }
    }

    /// Whether `(term, sid)` is materialised.
    pub fn contains(&self, term: TermId, sid: Sid) -> Result<bool> {
        Ok(self.get(term, sid)?.is_some())
    }

    /// Removes the registration; returns the stats it had.
    pub fn remove(&mut self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        let stats = self.get(term, sid)?;
        if stats.is_some() {
            self.table.delete(&Self::key(term, sid))?;
        }
        Ok(stats)
    }

    /// Every registered (term, sid, stats) triple.
    pub fn all(&self) -> Result<Vec<(TermId, Sid, ListStats)>> {
        let mut out = Vec::new();
        let mut cursor = self.table.scan()?;
        while let Some((k, v)) = cursor.next_entry()? {
            out.push((get_u32(&k, 0)?, get_u32(&k, 4)?, Self::decode_stats(&v)?));
        }
        Ok(out)
    }

    /// Every materialised sid of `term`, in ascending sid order — the block
    /// iterators' fan-out set for a term-wide scan.
    pub fn sids_of(&self, term: TermId) -> Result<Vec<(Sid, ListStats)>> {
        let mut prefix = Vec::with_capacity(4);
        put_u32(&mut prefix, term);
        let mut cursor = self.table.seek(&prefix)?;
        let mut out = Vec::new();
        while let Some((k, v)) = cursor.next_entry()? {
            if get_u32(&k, 0)? != term {
                break;
            }
            out.push((get_u32(&k, 4)?, Self::decode_stats(&v)?));
        }
        Ok(out)
    }

    /// Total bytes across all registered lists — the advisor's used-space
    /// figure for one redundant table.
    pub fn total_bytes(&self) -> Result<u64> {
        Ok(self.all()?.iter().map(|(_, _, s)| s.bytes).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_storage::Store;

    #[test]
    fn put_get_remove_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-registry-{}", std::process::id()));
        let store = Store::create(&path, 32).unwrap();
        let mut r = ListRegistry::new(store.create_table("reg").unwrap());

        assert!(!r.contains(1, 2).unwrap());
        r.put(
            1,
            2,
            ListStats {
                entries: 10,
                bytes: 200,
                blocks: 1,
            },
        )
        .unwrap();
        r.put(
            1,
            3,
            ListStats {
                entries: 5,
                bytes: 90,
                blocks: 1,
            },
        )
        .unwrap();
        r.put(
            2,
            2,
            ListStats {
                entries: 7,
                bytes: 70,
                blocks: 2,
            },
        )
        .unwrap();
        assert_eq!(
            r.get(1, 2).unwrap(),
            Some(ListStats {
                entries: 10,
                bytes: 200,
                blocks: 1,
            })
        );
        assert_eq!(r.total_bytes().unwrap(), 360);
        assert_eq!(r.all().unwrap().len(), 3);
        let sids: Vec<Sid> = r.sids_of(1).unwrap().iter().map(|&(s, _)| s).collect();
        assert_eq!(sids, vec![2, 3]);
        assert_eq!(r.sids_of(2).unwrap().len(), 1);
        assert!(r.sids_of(9).unwrap().is_empty());
        r.remove(2, 2).unwrap();

        let removed = r.remove(1, 2).unwrap();
        assert_eq!(removed.unwrap().entries, 10);
        assert!(!r.contains(1, 2).unwrap());
        assert!(r.remove(1, 2).unwrap().is_none());

        drop(r);
        drop(store);
        std::fs::remove_file(&path).ok();
    }
}
