//! The index builder: turns a stream of XML documents into the populated
//! `Elements` and `PostingLists` tables plus the catalog (dictionary,
//! summary, alias map, statistics).
//!
//! RPLs and ERPLs are *not* built here — they are redundant indexes that the
//! self-managing layer materialises on demand using ERA (paper §3.2: "TReX
//! also uses ERA for generating or extending the RPLs and ERPLs tables").

use std::collections::HashMap;

use trex_storage::Store;
use trex_summary::{AliasMap, Summary, SummaryCursor, SummaryKind};
use trex_text::{Analyzer, CollectionStats, Dictionary, TermId};
use trex_xml::{Document, NodeId, NodeKind};

use crate::catalog::{
    blob_names, encode_alias, encode_analyzer, encode_stats, put_term_stats, store_blob, TermStats,
    BLOBS_TABLE, TERM_STATS_TABLE,
};
use crate::docstore::DocStoreWriter;
use crate::elements::{ElementsTable, ELEMENTS_TABLE};
use crate::encode::{ElementRef, Position};
use crate::postings::POSTINGS_TABLE;
use crate::{IndexError, Result};

/// Accumulates an index over documents, then persists everything with
/// [`IndexBuilder::finish`].
pub struct IndexBuilder<'s> {
    store: &'s Store,
    analyzer: Analyzer,
    alias: AliasMap,
    summary: Summary,
    dictionary: Dictionary,
    elements: ElementsTable,
    postings_chunk_size: usize,
    /// term → ascending positions (document order guarantees sortedness).
    postings: HashMap<TermId, Vec<Position>>,
    /// term → (last doc counted, df, cf).
    term_stats: HashMap<TermId, (u32, u32, u64)>,
    doc_count: u32,
    element_count: u64,
    total_element_len: u64,
    /// When set, raw documents are stored for snippet retrieval.
    doc_store: Option<DocStoreWriter>,
    /// When set, the store is checkpointed every N documents, bounding the
    /// write-ahead log (and the work a crash can lose) during long builds.
    checkpoint_every: Option<u32>,
}

impl<'s> IndexBuilder<'s> {
    /// Starts a build into `store` with the given summary kind, alias
    /// mapping and analyzer.
    pub fn new(
        store: &'s Store,
        kind: SummaryKind,
        alias: AliasMap,
        analyzer: Analyzer,
    ) -> Result<IndexBuilder<'s>> {
        Ok(IndexBuilder {
            store,
            analyzer,
            alias,
            summary: Summary::new(kind),
            dictionary: Dictionary::new(),
            elements: ElementsTable::new(store.open_or_create_table(ELEMENTS_TABLE)?),
            postings_chunk_size: crate::postings::DEFAULT_CHUNK_SIZE,
            postings: HashMap::new(),
            term_stats: HashMap::new(),
            doc_count: 0,
            element_count: 0,
            total_element_len: 0,
            doc_store: None,
            checkpoint_every: None,
        })
    }

    /// Also store the raw documents, enabling snippet retrieval through
    /// [`crate::TrexIndex::documents`]. Roughly doubles the store size.
    pub fn enable_document_store(&mut self) -> Result<()> {
        if self.doc_store.is_none() {
            self.doc_store = Some(DocStoreWriter::open(self.store)?);
        }
        Ok(())
    }

    /// Overrides the posting-chunk size (chunk-size ablation).
    pub fn set_postings_chunk_size(&mut self, size: usize) {
        self.postings_chunk_size = size;
    }

    /// Checkpoints the store every `every` documents (None disables, the
    /// default). With the WAL enabled, each checkpoint truncates the log,
    /// bounding both log growth and the work a mid-build crash discards —
    /// everything up to the last checkpoint survives recovery.
    pub fn set_checkpoint_interval(&mut self, every: Option<u32>) {
        self.checkpoint_every = every.filter(|&n| n > 0);
    }

    fn maybe_checkpoint(&self) -> Result<()> {
        if let Some(every) = self.checkpoint_every {
            if self.doc_count.is_multiple_of(every) {
                self.store.flush()?;
            }
        }
        Ok(())
    }

    /// Parses and indexes one document; returns its assigned id.
    pub fn add_document(&mut self, xml: &str) -> Result<u32> {
        let doc = Document::parse(xml).map_err(IndexError::Xml)?;
        if let Some(ds) = &mut self.doc_store {
            ds.put(self.doc_count, xml)?;
        }
        self.add_parsed_internal(&doc)
    }

    /// Indexes an already-parsed document; returns its assigned id.
    pub fn add_parsed(&mut self, doc: &Document) -> Result<u32> {
        if let Some(ds) = &mut self.doc_store {
            ds.put(self.doc_count, &doc.to_xml())?;
        }
        self.add_parsed_internal(doc)
    }

    /// Indexes one document through the streaming pull parser, without
    /// building a DOM — the memory-friendly path for very large documents.
    /// Produces identical index state to [`IndexBuilder::add_document`].
    pub fn add_document_streaming(&mut self, xml: &str) -> Result<u32> {
        if let Some(ds) = &mut self.doc_store {
            ds.put(self.doc_count, xml)?;
        }
        let doc_id = self.doc_count;
        self.doc_count += 1;

        let mut reader = trex_xml::Reader::new(xml);
        let mut cursor = SummaryCursor::new();
        let mut next_pos = 0u32;
        // Per open element: (sid, first position mark).
        let mut open: Vec<(trex_summary::Sid, u32)> = Vec::new();

        while let Some(event) = reader.next_event().map_err(IndexError::Xml)? {
            match event {
                trex_xml::Event::StartElement { name, .. } => {
                    let label = self.alias.resolve(&name).to_string();
                    let sid = cursor.enter(&mut self.summary, &label);
                    self.summary.record_element(sid);
                    open.push((sid, next_pos));
                }
                trex_xml::Event::EndElement { .. } => {
                    let (sid, mark) = open.pop().expect("reader guarantees balance");
                    cursor.leave();
                    let length = next_pos - mark;
                    if length > 0 {
                        self.elements.insert(
                            sid,
                            ElementRef {
                                doc: doc_id,
                                end: next_pos - 1,
                                length,
                            },
                        )?;
                        self.element_count += 1;
                        self.total_element_len += length as u64;
                    }
                }
                trex_xml::Event::Text(text) => {
                    self.index_text(&text, doc_id, &mut next_pos);
                }
                trex_xml::Event::Comment(_) | trex_xml::Event::ProcessingInstruction(_) => {}
            }
        }
        self.maybe_checkpoint()?;
        Ok(doc_id)
    }

    /// Analyses one text run, interning terms and recording postings.
    fn index_text(&mut self, text: &str, doc_id: u32, next_pos: &mut u32) {
        let (terms, np) = self.analyzer.analyze_from(text, *next_pos);
        *next_pos = np;
        for token in terms {
            let term = self.dictionary.intern(&token.text);
            self.postings.entry(term).or_default().push(Position {
                doc: doc_id,
                offset: token.position,
            });
            let entry = self.term_stats.entry(term).or_insert((u32::MAX, 0, 0));
            if entry.0 != doc_id {
                entry.0 = doc_id;
                entry.1 += 1;
            }
            entry.2 += 1;
        }
    }

    fn add_parsed_internal(&mut self, doc: &Document) -> Result<u32> {
        let doc_id = self.doc_count;
        self.doc_count += 1;
        let mut cursor = SummaryCursor::new();
        let mut next_pos = 0u32;
        self.walk(doc, doc.root(), &mut cursor, doc_id, &mut next_pos)?;
        self.maybe_checkpoint()?;
        Ok(doc_id)
    }

    fn walk(
        &mut self,
        doc: &Document,
        node: NodeId,
        cursor: &mut SummaryCursor,
        doc_id: u32,
        next_pos: &mut u32,
    ) -> Result<()> {
        match &doc.node(node).kind {
            NodeKind::Text(text) => {
                let text = text.clone(); // appease the borrow of self
                self.index_text(&text, doc_id, next_pos);
            }
            NodeKind::Element { name, .. } => {
                let label = self.alias.resolve(name).to_string();
                let sid = cursor.enter(&mut self.summary, &label);
                self.summary.record_element(sid);
                let mark = *next_pos;
                for &child in &doc.node(node).children {
                    self.walk(doc, child, cursor, doc_id, next_pos)?;
                }
                cursor.leave();
                let length = *next_pos - mark;
                if length > 0 {
                    self.elements.insert(
                        sid,
                        ElementRef {
                            doc: doc_id,
                            end: *next_pos - 1,
                            length,
                        },
                    )?;
                    self.element_count += 1;
                    self.total_element_len += length as u64;
                }
            }
        }
        Ok(())
    }

    /// Collection statistics accumulated so far.
    pub fn stats(&self) -> CollectionStats {
        CollectionStats {
            doc_count: self.doc_count,
            element_count: self.element_count,
            avg_element_len: if self.element_count == 0 {
                0.0
            } else {
                self.total_element_len as f32 / self.element_count as f32
            },
        }
    }

    /// Number of documents indexed so far.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Writes posting lists, term statistics and catalog blobs; flushes the
    /// store. After this the index is complete (sans redundant RPL/ERPL
    /// lists) and can be opened with [`crate::TrexIndex::open`].
    pub fn finish(self) -> Result<()> {
        // Posting keys ascend across sorted terms and within each term, so
        // the whole table is built with one B+tree bulk load.
        let mut terms: Vec<(TermId, Vec<Position>)> = self.postings.into_iter().collect();
        terms.sort_unstable_by_key(|(t, _)| *t);
        let chunk_size = self.postings_chunk_size;
        let entries = terms.iter().flat_map(|(term, positions)| {
            debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            crate::postings::chunk_entries(*term, positions, chunk_size)
        });
        self.store.create_table_bulk(POSTINGS_TABLE, entries)?;

        let mut stats_table = self.store.open_or_create_table(TERM_STATS_TABLE)?;
        let mut term_stats: Vec<(TermId, (u32, u32, u64))> = self.term_stats.into_iter().collect();
        term_stats.sort_unstable_by_key(|(t, _)| *t);
        for (term, (_, df, cf)) in term_stats {
            put_term_stats(&mut stats_table, term, TermStats { df, cf })?;
        }

        let stats = CollectionStats {
            doc_count: self.doc_count,
            element_count: self.element_count,
            avg_element_len: if self.element_count == 0 {
                0.0
            } else {
                self.total_element_len as f32 / self.element_count as f32
            },
        };
        let mut blobs = self.store.open_or_create_table(BLOBS_TABLE)?;
        store_blob(
            &mut blobs,
            blob_names::DICTIONARY,
            &self.dictionary.encode(),
        )?;
        store_blob(&mut blobs, blob_names::SUMMARY, &self.summary.encode())?;
        store_blob(&mut blobs, blob_names::ALIAS, &encode_alias(&self.alias))?;
        store_blob(&mut blobs, blob_names::STATS, &encode_stats(&stats))?;
        store_blob(
            &mut blobs,
            blob_names::ANALYZER,
            &encode_analyzer(&self.analyzer),
        )?;

        // Create the (initially empty) RPL/ERPL tables now so they are part
        // of the final checkpoint. `TrexIndex::open` would otherwise create
        // them lazily on every open of a never-materialised store, and a
        // read-only session never checkpoints, so recovery would discard
        // (and re-report) those uncommitted creations on each reopen.
        self.store.open_or_create_table(crate::rpl::RPLS_TABLE)?;
        self.store
            .open_or_create_table(crate::rpl::RPLS_REGISTRY_TABLE)?;
        self.store.open_or_create_table(crate::erpl::ERPLS_TABLE)?;
        self.store
            .open_or_create_table(crate::erpl::ERPLS_REGISTRY_TABLE)?;

        self.store.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrexIndex;
    use std::sync::Arc;

    fn build_and_open(name: &str, docs: &[&str]) -> (TrexIndex, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-build-{name}-{}", std::process::id()));
        let store = Store::create(&path, 128).unwrap();
        let mut builder = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::inex_ieee(),
            Analyzer::default(),
        )
        .unwrap();
        for d in docs {
            builder.add_document(d).unwrap();
        }
        builder.finish().unwrap();
        (TrexIndex::open(Arc::new(store)).unwrap(), path)
    }

    #[test]
    fn end_to_end_build_and_reopen() {
        let docs = [
            "<article><bdy><sec>xml retrieval systems</sec><sec>query evaluation</sec></bdy></article>",
            "<article><bdy><ss1>xml indexing</ss1></bdy></article>",
        ];
        let (index, path) = build_and_open("e2e", &docs);

        // Dictionary knows the stemmed vocabulary.
        let xml_term = index.dictionary().lookup("xml").unwrap();
        assert!(index.dictionary().lookup("retriev").is_some());

        // Summary: article, bdy, sec (ss1 aliased into sec).
        assert_eq!(index.summary().node_count(), 3);
        let sec_sid = index.summary().sids_with_label("sec")[0];
        assert_eq!(index.summary().node(sec_sid).extent_size, 3);

        // Elements table has the three sec elements.
        let elements = index.elements().unwrap();
        assert_eq!(elements.extent_size(sec_sid).unwrap(), 3);

        // Postings: xml appears in both documents.
        let stats = index.term_stats(xml_term).unwrap();
        assert_eq!(stats.df, 2);
        assert_eq!(stats.cf, 2);
        let mut it = index.postings().unwrap().positions(xml_term).unwrap();
        let p1 = it.next_position().unwrap();
        let p2 = it.next_position().unwrap();
        assert_eq!((p1.doc, p2.doc), (0, 1));
        assert!(it.next_position().unwrap().is_max());

        // Collection stats.
        assert_eq!(index.stats().doc_count, 2);
        assert!(index.stats().avg_element_len > 0.0);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn element_spans_cover_token_positions() {
        // Positions: "deep structure here" → 0,1,2 ("here" is not a stopword).
        let docs = ["<a><b>deep structure</b><c>here</c></a>"];
        let (index, path) = build_and_open("spans", &docs);
        let summary = index.summary();
        let b_sid = summary.sids_with_label("b")[0];
        let c_sid = summary.sids_with_label("c")[0];
        let a_sid = summary.sids_with_label("a")[0];
        let elements = index.elements().unwrap();
        let b = elements
            .extent(b_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!((b.start(), b.end, b.length), (0, 1, 2));
        let c = elements
            .extent(c_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!((c.start(), c.end, c.length), (2, 2, 1));
        let a = elements
            .extent(a_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!((a.start(), a.end, a.length), (0, 2, 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_elements_are_not_indexed() {
        let docs = ["<a><empty/><b>word</b><gap></gap></a>"];
        let (index, path) = build_and_open("empty", &docs);
        let summary = index.summary();
        // Summary still records them (extent counts include empty elements)…
        assert!(summary.sids_with_label("empty").len() == 1);
        // …but the Elements table does not.
        let empty_sid = summary.sids_with_label("empty")[0];
        let elements = index.elements().unwrap();
        assert_eq!(elements.extent_size(empty_sid).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stopwords_consume_positions_but_are_not_indexed() {
        let docs = ["<a>the query</a>"];
        let (index, path) = build_and_open("stop", &docs);
        assert!(index.dictionary().lookup("the").is_none());
        let a_sid = index.summary().sids_with_label("a")[0];
        let a = index
            .elements()
            .unwrap()
            .extent(a_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!(a.length, 2, "element length counts stopword tokens");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_interval_checkpoints_during_the_build() {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-build-ckpt-{}", std::process::id()));
        let store = Store::create(&path, 128).unwrap();
        let mut builder = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::default(),
        )
        .unwrap();
        builder.set_checkpoint_interval(Some(2));
        for i in 0..6 {
            builder
                .add_document(&format!("<a>doc number {i}</a>"))
                .unwrap();
        }
        let mid_build = store.counters().checkpoints.get();
        assert_eq!(mid_build, 3, "one checkpoint per two documents");
        builder.finish().unwrap();
        assert!(store.counters().checkpoints.get() > mid_build);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(trex_storage::wal_path(&path)).ok();
    }

    #[test]
    fn malformed_document_is_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-build-bad-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut builder = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::default(),
        )
        .unwrap();
        assert!(matches!(
            builder.add_document("<a><b></a>"),
            Err(IndexError::Xml(_))
        ));
        drop(builder);
        drop(store);
        std::fs::remove_file(&path).ok();
    }
}
