//! The index builder: turns a stream of XML documents into the populated
//! `Elements` and `PostingLists` tables plus the catalog (dictionary,
//! summary, alias map, statistics).
//!
//! RPLs and ERPLs are *not* built here — they are redundant indexes that the
//! self-managing layer materialises on demand using ERA (paper §3.2: "TReX
//! also uses ERA for generating or extending the RPLs and ERPLs tables").
//!
//! ## Partitioned builds
//!
//! [`IndexBuilder::new_partitioned`] builds N independent stores from one
//! document stream in a single pass. The *catalog* state — structural
//! summary (and therefore sid numbering, which is assigned by first
//! encounter in global document order), dictionary (term-id assignment),
//! collection statistics, and per-term df/cf — accumulates globally and is
//! written **identically** to every partition store at
//! [`finish`](IndexBuilder::finish). Only the per-document state — element
//! rows, postings, stored documents — is routed, by
//! [`partition_of`](crate::partition_of) over the *global* doc id, into one
//! partition's tables. Scores depend solely on the shared catalog (global
//! stats + global df) and on per-element tf/length, so every partition
//! scores its elements byte-identically to a single store holding the whole
//! collection, and a rank-safe merge of per-partition top-k lists
//! reproduces the single-store answer exactly.

use std::collections::HashMap;

use trex_storage::Store;
use trex_summary::{AliasMap, Summary, SummaryCursor, SummaryKind};
use trex_text::{Analyzer, CollectionStats, Dictionary, TermId};
use trex_xml::{Document, NodeId, NodeKind};

use crate::catalog::{
    blob_names, encode_alias, encode_analyzer, encode_stats, put_term_stats, store_blob, TermStats,
    BLOBS_TABLE, TERM_STATS_TABLE,
};
use crate::docstore::DocStoreWriter;
use crate::elements::{ElementsTable, ELEMENTS_TABLE};
use crate::encode::{ElementRef, Position};
use crate::postings::POSTINGS_TABLE;
use crate::{IndexError, Result};

/// The per-store half of a build: the tables that hold routed (per-document)
/// state. A single-store build has exactly one sink; a partitioned build has
/// one per partition store.
struct StoreSink<'s> {
    store: &'s Store,
    elements: ElementsTable,
    /// term → ascending positions (document order guarantees sortedness —
    /// routing preserves it, since a document lands wholly in one sink).
    postings: HashMap<TermId, Vec<Position>>,
    /// When set, raw documents are stored for snippet retrieval.
    doc_store: Option<DocStoreWriter>,
}

impl<'s> StoreSink<'s> {
    fn new(store: &'s Store) -> Result<StoreSink<'s>> {
        Ok(StoreSink {
            store,
            elements: ElementsTable::new(store.open_or_create_table(ELEMENTS_TABLE)?),
            postings: HashMap::new(),
            doc_store: None,
        })
    }
}

/// Accumulates an index over documents, then persists everything with
/// [`IndexBuilder::finish`].
pub struct IndexBuilder<'s> {
    analyzer: Analyzer,
    alias: AliasMap,
    summary: Summary,
    dictionary: Dictionary,
    /// One per partition store; single-store builds have exactly one.
    sinks: Vec<StoreSink<'s>>,
    postings_chunk_size: usize,
    /// term → (last doc counted, df, cf) — global across all sinks.
    term_stats: HashMap<TermId, (u32, u32, u64)>,
    doc_count: u32,
    element_count: u64,
    total_element_len: u64,
    /// When set, every store is checkpointed every N documents, bounding the
    /// write-ahead log (and the work a crash can lose) during long builds.
    checkpoint_every: Option<u32>,
}

impl<'s> IndexBuilder<'s> {
    /// Starts a build into `store` with the given summary kind, alias
    /// mapping and analyzer.
    pub fn new(
        store: &'s Store,
        kind: SummaryKind,
        alias: AliasMap,
        analyzer: Analyzer,
    ) -> Result<IndexBuilder<'s>> {
        IndexBuilder::new_partitioned(vec![store], kind, alias, analyzer)
    }

    /// Starts a partitioned build: one sink per store, documents routed by
    /// [`partition_of`](crate::partition_of) over their global doc id, one
    /// shared catalog written identically to every store at `finish` (see
    /// the module docs for why that makes partitioned scoring byte-identical
    /// to a single store).
    pub fn new_partitioned(
        stores: Vec<&'s Store>,
        kind: SummaryKind,
        alias: AliasMap,
        analyzer: Analyzer,
    ) -> Result<IndexBuilder<'s>> {
        assert!(!stores.is_empty(), "at least one partition store");
        let sinks = stores
            .into_iter()
            .map(StoreSink::new)
            .collect::<Result<Vec<_>>>()?;
        Ok(IndexBuilder {
            analyzer,
            alias,
            summary: Summary::new(kind),
            dictionary: Dictionary::new(),
            sinks,
            postings_chunk_size: crate::postings::DEFAULT_CHUNK_SIZE,
            term_stats: HashMap::new(),
            doc_count: 0,
            element_count: 0,
            total_element_len: 0,
            checkpoint_every: None,
        })
    }

    /// Also store the raw documents, enabling snippet retrieval through
    /// [`crate::TrexIndex::documents`]. Roughly doubles the store size.
    pub fn enable_document_store(&mut self) -> Result<()> {
        for sink in &mut self.sinks {
            if sink.doc_store.is_none() {
                sink.doc_store = Some(DocStoreWriter::open(sink.store)?);
            }
        }
        Ok(())
    }

    /// Overrides the posting-chunk size (chunk-size ablation).
    pub fn set_postings_chunk_size(&mut self, size: usize) {
        self.postings_chunk_size = size;
    }

    /// Checkpoints the store every `every` documents (None disables, the
    /// default). With the WAL enabled, each checkpoint truncates the log,
    /// bounding both log growth and the work a mid-build crash discards —
    /// everything up to the last checkpoint survives recovery.
    pub fn set_checkpoint_interval(&mut self, every: Option<u32>) {
        self.checkpoint_every = every.filter(|&n| n > 0);
    }

    fn maybe_checkpoint(&self) -> Result<()> {
        if let Some(every) = self.checkpoint_every {
            if self.doc_count.is_multiple_of(every) {
                for sink in &self.sinks {
                    sink.store.flush()?;
                }
            }
        }
        Ok(())
    }

    /// The sink index the next document routes to.
    fn route_next(&self) -> usize {
        crate::partition_of(self.doc_count, self.sinks.len())
    }

    /// Parses and indexes one document; returns its assigned id.
    pub fn add_document(&mut self, xml: &str) -> Result<u32> {
        let doc = Document::parse(xml).map_err(IndexError::Xml)?;
        let p = self.route_next();
        if let Some(ds) = &mut self.sinks[p].doc_store {
            ds.put(self.doc_count, xml)?;
        }
        self.add_parsed_internal(&doc, p)
    }

    /// Indexes an already-parsed document; returns its assigned id.
    pub fn add_parsed(&mut self, doc: &Document) -> Result<u32> {
        let p = self.route_next();
        if let Some(ds) = &mut self.sinks[p].doc_store {
            ds.put(self.doc_count, &doc.to_xml())?;
        }
        self.add_parsed_internal(doc, p)
    }

    /// Indexes one document through the streaming pull parser, without
    /// building a DOM — the memory-friendly path for very large documents.
    /// Produces identical index state to [`IndexBuilder::add_document`].
    pub fn add_document_streaming(&mut self, xml: &str) -> Result<u32> {
        let p = self.route_next();
        if let Some(ds) = &mut self.sinks[p].doc_store {
            ds.put(self.doc_count, xml)?;
        }
        let doc_id = self.doc_count;
        self.doc_count += 1;

        let mut reader = trex_xml::Reader::new(xml);
        let mut cursor = SummaryCursor::new();
        let mut next_pos = 0u32;
        // Per open element: (sid, first position mark).
        let mut open: Vec<(trex_summary::Sid, u32)> = Vec::new();

        while let Some(event) = reader.next_event().map_err(IndexError::Xml)? {
            match event {
                trex_xml::Event::StartElement { name, .. } => {
                    let label = self.alias.resolve(&name).to_string();
                    let sid = cursor.enter(&mut self.summary, &label);
                    self.summary.record_element(sid);
                    open.push((sid, next_pos));
                }
                trex_xml::Event::EndElement { .. } => {
                    let (sid, mark) = open.pop().expect("reader guarantees balance");
                    cursor.leave();
                    let length = next_pos - mark;
                    if length > 0 {
                        self.sinks[p].elements.insert(
                            sid,
                            ElementRef {
                                doc: doc_id,
                                end: next_pos - 1,
                                length,
                            },
                        )?;
                        self.element_count += 1;
                        self.total_element_len += length as u64;
                    }
                }
                trex_xml::Event::Text(text) => {
                    self.index_text(&text, doc_id, p, &mut next_pos);
                }
                trex_xml::Event::Comment(_) | trex_xml::Event::ProcessingInstruction(_) => {}
            }
        }
        self.maybe_checkpoint()?;
        Ok(doc_id)
    }

    /// Analyses one text run, interning terms (globally) and recording
    /// postings into sink `p`.
    fn index_text(&mut self, text: &str, doc_id: u32, p: usize, next_pos: &mut u32) {
        let (terms, np) = self.analyzer.analyze_from(text, *next_pos);
        *next_pos = np;
        for token in terms {
            let term = self.dictionary.intern(&token.text);
            self.sinks[p]
                .postings
                .entry(term)
                .or_default()
                .push(Position {
                    doc: doc_id,
                    offset: token.position,
                });
            let entry = self.term_stats.entry(term).or_insert((u32::MAX, 0, 0));
            if entry.0 != doc_id {
                entry.0 = doc_id;
                entry.1 += 1;
            }
            entry.2 += 1;
        }
    }

    fn add_parsed_internal(&mut self, doc: &Document, p: usize) -> Result<u32> {
        let doc_id = self.doc_count;
        self.doc_count += 1;
        let mut cursor = SummaryCursor::new();
        let mut next_pos = 0u32;
        self.walk(doc, doc.root(), &mut cursor, doc_id, p, &mut next_pos)?;
        self.maybe_checkpoint()?;
        Ok(doc_id)
    }

    fn walk(
        &mut self,
        doc: &Document,
        node: NodeId,
        cursor: &mut SummaryCursor,
        doc_id: u32,
        p: usize,
        next_pos: &mut u32,
    ) -> Result<()> {
        match &doc.node(node).kind {
            NodeKind::Text(text) => {
                let text = text.clone(); // appease the borrow of self
                self.index_text(&text, doc_id, p, next_pos);
            }
            NodeKind::Element { name, .. } => {
                let label = self.alias.resolve(name).to_string();
                let sid = cursor.enter(&mut self.summary, &label);
                self.summary.record_element(sid);
                let mark = *next_pos;
                for &child in &doc.node(node).children {
                    self.walk(doc, child, cursor, doc_id, p, next_pos)?;
                }
                cursor.leave();
                let length = *next_pos - mark;
                if length > 0 {
                    self.sinks[p].elements.insert(
                        sid,
                        ElementRef {
                            doc: doc_id,
                            end: *next_pos - 1,
                            length,
                        },
                    )?;
                    self.element_count += 1;
                    self.total_element_len += length as u64;
                }
            }
        }
        Ok(())
    }

    /// Collection statistics accumulated so far.
    pub fn stats(&self) -> CollectionStats {
        CollectionStats {
            doc_count: self.doc_count,
            element_count: self.element_count,
            avg_element_len: if self.element_count == 0 {
                0.0
            } else {
                self.total_element_len as f32 / self.element_count as f32
            },
        }
    }

    /// Number of documents indexed so far.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Writes posting lists, term statistics and catalog blobs; flushes
    /// every store. After this the index (every partition store, for
    /// partitioned builds) is complete (sans redundant RPL/ERPL lists) and
    /// can be opened with [`crate::TrexIndex::open`].
    ///
    /// Every sink receives the **same** catalog: global dictionary, summary,
    /// alias map, collection statistics and per-term df/cf — only the
    /// posting lists, element rows and stored documents are partition-local.
    /// That shared catalog is the byte-identity invariant (module docs).
    pub fn finish(self) -> Result<()> {
        let chunk_size = self.postings_chunk_size;

        // Global catalog state, encoded once and written to every store.
        let stats = CollectionStats {
            doc_count: self.doc_count,
            element_count: self.element_count,
            avg_element_len: if self.element_count == 0 {
                0.0
            } else {
                self.total_element_len as f32 / self.element_count as f32
            },
        };
        let dictionary_bytes = self.dictionary.encode();
        let summary_bytes = self.summary.encode();
        let alias_bytes = encode_alias(&self.alias);
        let stats_bytes = encode_stats(&stats);
        let analyzer_bytes = encode_analyzer(&self.analyzer);
        let mut term_stats: Vec<(TermId, (u32, u32, u64))> = self.term_stats.into_iter().collect();
        term_stats.sort_unstable_by_key(|(t, _)| *t);

        for sink in self.sinks {
            // Posting keys ascend across sorted terms and within each term,
            // so the whole table is built with one B+tree bulk load.
            let mut terms: Vec<(TermId, Vec<Position>)> = sink.postings.into_iter().collect();
            terms.sort_unstable_by_key(|(t, _)| *t);
            let entries = terms.iter().flat_map(|(term, positions)| {
                debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
                crate::postings::chunk_entries(*term, positions, chunk_size)
            });
            sink.store.create_table_bulk(POSTINGS_TABLE, entries)?;

            let mut stats_table = sink.store.open_or_create_table(TERM_STATS_TABLE)?;
            for &(term, (_, df, cf)) in &term_stats {
                put_term_stats(&mut stats_table, term, TermStats { df, cf })?;
            }

            let mut blobs = sink.store.open_or_create_table(BLOBS_TABLE)?;
            store_blob(&mut blobs, blob_names::DICTIONARY, &dictionary_bytes)?;
            store_blob(&mut blobs, blob_names::SUMMARY, &summary_bytes)?;
            store_blob(&mut blobs, blob_names::ALIAS, &alias_bytes)?;
            store_blob(&mut blobs, blob_names::STATS, &stats_bytes)?;
            store_blob(&mut blobs, blob_names::ANALYZER, &analyzer_bytes)?;

            // Create the (initially empty) RPL/ERPL tables now so they are
            // part of the final checkpoint. `TrexIndex::open` would
            // otherwise create them lazily on every open of a
            // never-materialised store, and a read-only session never
            // checkpoints, so recovery would discard (and re-report) those
            // uncommitted creations on each reopen.
            sink.store.open_or_create_table(crate::rpl::RPLS_TABLE)?;
            sink.store
                .open_or_create_table(crate::rpl::RPLS_REGISTRY_TABLE)?;
            sink.store.open_or_create_table(crate::erpl::ERPLS_TABLE)?;
            sink.store
                .open_or_create_table(crate::erpl::ERPLS_REGISTRY_TABLE)?;

            sink.store.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrexIndex;
    use std::sync::Arc;

    fn build_and_open(name: &str, docs: &[&str]) -> (TrexIndex, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-build-{name}-{}", std::process::id()));
        let store = Store::create(&path, 128).unwrap();
        let mut builder = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::inex_ieee(),
            Analyzer::default(),
        )
        .unwrap();
        for d in docs {
            builder.add_document(d).unwrap();
        }
        builder.finish().unwrap();
        (TrexIndex::open(Arc::new(store)).unwrap(), path)
    }

    #[test]
    fn end_to_end_build_and_reopen() {
        let docs = [
            "<article><bdy><sec>xml retrieval systems</sec><sec>query evaluation</sec></bdy></article>",
            "<article><bdy><ss1>xml indexing</ss1></bdy></article>",
        ];
        let (index, path) = build_and_open("e2e", &docs);

        // Dictionary knows the stemmed vocabulary.
        let xml_term = index.dictionary().lookup("xml").unwrap();
        assert!(index.dictionary().lookup("retriev").is_some());

        // Summary: article, bdy, sec (ss1 aliased into sec).
        assert_eq!(index.summary().node_count(), 3);
        let sec_sid = index.summary().sids_with_label("sec")[0];
        assert_eq!(index.summary().node(sec_sid).extent_size, 3);

        // Elements table has the three sec elements.
        let elements = index.elements().unwrap();
        assert_eq!(elements.extent_size(sec_sid).unwrap(), 3);

        // Postings: xml appears in both documents.
        let stats = index.term_stats(xml_term).unwrap();
        assert_eq!(stats.df, 2);
        assert_eq!(stats.cf, 2);
        let mut it = index.postings().unwrap().positions(xml_term).unwrap();
        let p1 = it.next_position().unwrap();
        let p2 = it.next_position().unwrap();
        assert_eq!((p1.doc, p2.doc), (0, 1));
        assert!(it.next_position().unwrap().is_max());

        // Collection stats.
        assert_eq!(index.stats().doc_count, 2);
        assert!(index.stats().avg_element_len > 0.0);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn element_spans_cover_token_positions() {
        // Positions: "deep structure here" → 0,1,2 ("here" is not a stopword).
        let docs = ["<a><b>deep structure</b><c>here</c></a>"];
        let (index, path) = build_and_open("spans", &docs);
        let summary = index.summary();
        let b_sid = summary.sids_with_label("b")[0];
        let c_sid = summary.sids_with_label("c")[0];
        let a_sid = summary.sids_with_label("a")[0];
        let elements = index.elements().unwrap();
        let b = elements
            .extent(b_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!((b.start(), b.end, b.length), (0, 1, 2));
        let c = elements
            .extent(c_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!((c.start(), c.end, c.length), (2, 2, 1));
        let a = elements
            .extent(a_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!((a.start(), a.end, a.length), (0, 2, 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_elements_are_not_indexed() {
        let docs = ["<a><empty/><b>word</b><gap></gap></a>"];
        let (index, path) = build_and_open("empty", &docs);
        let summary = index.summary();
        // Summary still records them (extent counts include empty elements)…
        assert!(summary.sids_with_label("empty").len() == 1);
        // …but the Elements table does not.
        let empty_sid = summary.sids_with_label("empty")[0];
        let elements = index.elements().unwrap();
        assert_eq!(elements.extent_size(empty_sid).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stopwords_consume_positions_but_are_not_indexed() {
        let docs = ["<a>the query</a>"];
        let (index, path) = build_and_open("stop", &docs);
        assert!(index.dictionary().lookup("the").is_none());
        let a_sid = index.summary().sids_with_label("a")[0];
        let a = index
            .elements()
            .unwrap()
            .extent(a_sid)
            .unwrap()
            .next_element()
            .unwrap()
            .unwrap();
        assert_eq!(a.length, 2, "element length counts stopword tokens");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_interval_checkpoints_during_the_build() {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-build-ckpt-{}", std::process::id()));
        let store = Store::create(&path, 128).unwrap();
        let mut builder = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::default(),
        )
        .unwrap();
        builder.set_checkpoint_interval(Some(2));
        for i in 0..6 {
            builder
                .add_document(&format!("<a>doc number {i}</a>"))
                .unwrap();
        }
        let mid_build = store.counters().checkpoints.get();
        assert_eq!(mid_build, 3, "one checkpoint per two documents");
        builder.finish().unwrap();
        assert!(store.counters().checkpoints.get() > mid_build);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(trex_storage::wal_path(&path)).ok();
    }

    #[test]
    fn malformed_document_is_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-build-bad-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut builder = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::identity(),
            Analyzer::default(),
        )
        .unwrap();
        assert!(matches!(
            builder.add_document("<a><b></a>"),
            Err(IndexError::Xml(_))
        ));
        drop(builder);
        drop(store);
        std::fs::remove_file(&path).ok();
    }
}
