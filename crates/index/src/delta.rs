//! The in-memory *delta index* for live document ingestion.
//!
//! A built store is sealed: `IndexBuilder::finish` bulk-loads the posting
//! table and writes the catalog blobs. To accept documents afterwards the
//! system stages them here — an in-memory overlay holding, per ingested
//! document, its element rows, its postings over the *frozen* base
//! dictionary, and its raw XML (a docstore overlay). Durability comes from
//! the storage layer's `KIND_INGEST` WAL record (logged before the document
//! becomes visible); a background *fold* periodically merges the delta into
//! the B+tree tables under the maintenance write gate and then checkpoints,
//! consuming the WAL records it made durable.
//!
//! Two invariants keep delta∪disk queries rank-safe:
//!
//! * **Frozen scoring inputs.** Ingestion never touches `CollectionStats`,
//!   existing terms' `TermStats`, or the structural summary. Delta matches
//!   are scored through the same `TrexIndex::score` path as disk matches,
//!   so an element's score is byte-identical before and after the fold.
//! * **Contiguous id prefix.** `ingest_guard` serialises allocate → stage →
//!   WAL-log → apply, so the delta's documents are always a contiguous
//!   suffix of the allocated id space and the fold can consume WAL records
//!   with a single doc-id watermark.
//!
//! Terms *not* in the base dictionary are staged as `new_terms` (keyed by
//! token text). They are unreachable by queries until a fold persists them
//! into the dictionary blob and the index is reopened — the frozen in-memory
//! dictionary cannot grow — which the design accepts: a brand-new term has
//! no statistics to score with anyway.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard, RwLock};
use trex_summary::{AliasMap, Sid, Summary, SummaryCursor};
use trex_text::{Analyzer, Dictionary, TermId};
use trex_xml::{Document, NodeId, NodeKind};

use crate::encode::{ElementRef, Position};
use crate::{IndexError, Result};

/// One staged document: everything the fold needs to merge it into the
/// on-disk tables, and everything the query side needs to match against it.
#[derive(Debug, Clone)]
pub struct DeltaDoc {
    /// The allocated document id (higher than every built/folded id).
    pub doc_id: u32,
    /// Raw XML, kept for the docstore overlay and the fold's docstore write.
    pub xml: String,
    /// Element rows in document order: `(sid, element)`.
    pub elements: Vec<(Sid, ElementRef)>,
    /// Postings over the frozen base dictionary, positions ascending.
    pub postings: HashMap<TermId, Vec<Position>>,
    /// Postings of terms unknown to the base dictionary, keyed by token
    /// text; persisted (dictionary + postings + stats) at fold time.
    pub new_terms: HashMap<String, Vec<Position>>,
}

impl DeltaDoc {
    /// Approximate resident bytes (drives the fold threshold).
    pub fn approx_bytes(&self) -> u64 {
        let postings: usize = self.postings.values().map(|v| v.len() * 8 + 16).sum();
        let new_terms: usize = self
            .new_terms
            .iter()
            .map(|(t, v)| t.len() + v.len() * 8 + 32)
            .sum();
        (self.xml.len() + self.elements.len() * 16 + postings + new_terms) as u64
    }
}

/// One delta match: an element of a requested sid containing at least one
/// of the requested terms, with per-term frequencies (same inclusion rule
/// as ERA: emitted iff some `tf > 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMatch {
    /// Summary node of the element.
    pub sid: Sid,
    /// The element.
    pub element: ElementRef,
    /// `tf[i]` = occurrences of the i-th requested term inside the element.
    pub tf: Vec<u32>,
}

#[derive(Default)]
struct DeltaState {
    docs: Vec<DeltaDoc>,
    bytes: u64,
}

/// The in-memory delta index shared by ingestion, query evaluation, and the
/// background fold. Readers take the inner lock briefly to snapshot or scan;
/// writers (`apply`, `take_docs`) additionally run under the maintenance
/// write gate so queries never observe a half-applied document.
pub struct DeltaIndex {
    state: RwLock<DeltaState>,
    /// Next id to hand out; `u32::MAX` itself is never allocated (it is the
    /// `m-pos` sentinel's document id).
    next_doc_id: AtomicU32,
    /// Serialises allocate → stage → WAL-log → apply across ingest calls.
    ingest_lock: Mutex<()>,
    /// Documents folded into the B+tree tables over this index's lifetime
    /// (observability; the fold reports it).
    folded_docs: AtomicU64,
}

impl DeltaIndex {
    /// An empty delta whose first allocated id will be `next_doc_id`.
    pub fn new(next_doc_id: u32) -> DeltaIndex {
        DeltaIndex {
            state: RwLock::new(DeltaState::default()),
            next_doc_id: AtomicU32::new(next_doc_id),
            ingest_lock: Mutex::new(()),
            folded_docs: AtomicU64::new(0),
        }
    }

    /// Takes the ingest serialisation lock. Hold the guard across
    /// [`DeltaIndex::peek_next_doc_id`], staging, WAL logging and
    /// [`DeltaIndex::apply`] so concurrent ingests cannot interleave.
    pub fn ingest_guard(&self) -> MutexGuard<'_, ()> {
        self.ingest_lock.lock()
    }

    /// The id the next successful ingest will use. Fails once the id space
    /// is exhausted — the caller must surface this as a typed error, never
    /// wrap.
    pub fn peek_next_doc_id(&self) -> Result<u32> {
        let id = self.next_doc_id.load(Ordering::Acquire);
        if id == u32::MAX {
            return Err(IndexError::DocIdsExhausted);
        }
        Ok(id)
    }

    /// Makes a staged document visible and advances the allocator. Call
    /// under the ingest guard *and* the maintenance write gate (the gate's
    /// generation bump is what invalidates serve-layer caches).
    pub fn apply(&self, doc: DeltaDoc) {
        let next = doc.doc_id.saturating_add(1);
        let mut state = self.state.write();
        state.bytes += doc.approx_bytes();
        state.docs.push(doc);
        self.next_doc_id.fetch_max(next, Ordering::AcqRel);
    }

    /// Number of staged (unfolded) documents.
    pub fn doc_count(&self) -> usize {
        self.state.read().docs.len()
    }

    /// Whether the delta holds no documents.
    pub fn is_empty(&self) -> bool {
        self.state.read().docs.is_empty()
    }

    /// Approximate resident bytes of the staged documents.
    pub fn approx_bytes(&self) -> u64 {
        self.state.read().bytes
    }

    /// Total documents folded to disk over this index's lifetime.
    pub fn folded_docs(&self) -> u64 {
        self.folded_docs.load(Ordering::Relaxed)
    }

    /// The raw XML of a staged document (docstore overlay), if present.
    pub fn document(&self, doc_id: u32) -> Option<String> {
        let state = self.state.read();
        state
            .docs
            .iter()
            .find(|d| d.doc_id == doc_id)
            .map(|d| d.xml.clone())
    }

    /// Matches the delta against a translated query — the delta-side ERA.
    /// Returns every staged element whose sid is in `sids` and which
    /// contains at least one of `terms`, with exact per-term frequencies.
    /// Mirrors ERA's inclusion rule (`EraMatch` is emitted iff some
    /// `tf > 0`), so scoring the result through `TrexIndex::score` yields
    /// exactly what ERA would produce after a fold.
    pub fn matches(&self, sids: &[Sid], terms: &[TermId]) -> Vec<DeltaMatch> {
        if sids.is_empty() || terms.is_empty() {
            return Vec::new();
        }
        let state = self.state.read();
        let mut out = Vec::new();
        for doc in &state.docs {
            for &(sid, element) in &doc.elements {
                if !sids.contains(&sid) {
                    continue;
                }
                let mut tf = vec![0u32; terms.len()];
                let mut any = false;
                for (i, term) in terms.iter().enumerate() {
                    if let Some(positions) = doc.postings.get(term) {
                        let n = positions.iter().filter(|p| element.contains(**p)).count() as u32;
                        if n > 0 {
                            tf[i] = n;
                            any = true;
                        }
                    }
                }
                if any {
                    out.push(DeltaMatch { sid, element, tf });
                }
            }
        }
        out
    }

    /// Number of delta entries the pair `(term, sid)` would add to a
    /// redundant list — the advisor adds this to on-disk list sizes so
    /// budget selection stays honest while documents are staged.
    pub fn list_entries(&self, term: TermId, sid: Sid) -> u64 {
        self.matches(&[sid], &[term]).len() as u64
    }

    /// Drains every staged document for a fold, resetting the byte count.
    /// Call under the maintenance write gate: appliers block on the gate,
    /// so the drained set is exactly the visible set and queries switch
    /// atomically from delta to disk when the gate drops.
    pub fn take_docs(&self) -> Vec<DeltaDoc> {
        let mut state = self.state.write();
        state.bytes = 0;
        let docs = std::mem::take(&mut state.docs);
        self.folded_docs
            .fetch_add(docs.len() as u64, Ordering::Relaxed);
        docs
    }

    /// Re-applies a recovered document at open time (WAL replay). Not
    /// gated: recovery runs before the index is shared.
    pub fn note_recovered(&self, doc: DeltaDoc) {
        self.apply(doc);
    }
}

/// Stages one document against the frozen catalog: parses, walks the
/// element tree with [`SummaryCursor::enter_existing`] (the summary is
/// *not* mutated — a path the summary does not know is a typed error), and
/// splits postings into base-dictionary terms and new terms.
///
/// Produces exactly the element spans and positions `IndexBuilder::walk`
/// would have produced for the same document, so a fold followed by a
/// rebuild-from-scratch agree.
pub fn stage_document(
    doc_id: u32,
    xml: &str,
    summary: &Summary,
    alias: &AliasMap,
    dictionary: &Dictionary,
    analyzer: Analyzer,
) -> Result<DeltaDoc> {
    let doc = Document::parse(xml).map_err(IndexError::Xml)?;
    let mut staged = DeltaDoc {
        doc_id,
        xml: xml.to_string(),
        elements: Vec::new(),
        postings: HashMap::new(),
        new_terms: HashMap::new(),
    };
    let mut cursor = SummaryCursor::new();
    let mut next_pos = 0u32;
    walk(
        &doc,
        doc.root(),
        &mut cursor,
        &mut next_pos,
        &mut staged,
        summary,
        alias,
        dictionary,
        analyzer,
    )?;
    Ok(staged)
}

#[allow(clippy::too_many_arguments)]
fn walk(
    doc: &Document,
    node: NodeId,
    cursor: &mut SummaryCursor,
    next_pos: &mut u32,
    staged: &mut DeltaDoc,
    summary: &Summary,
    alias: &AliasMap,
    dictionary: &Dictionary,
    analyzer: Analyzer,
) -> Result<()> {
    match &doc.node(node).kind {
        NodeKind::Text(text) => {
            let (tokens, np) = analyzer.analyze_from(text, *next_pos);
            *next_pos = np;
            for token in tokens {
                let position = Position {
                    doc: staged.doc_id,
                    offset: token.position,
                };
                match dictionary.lookup(&token.text) {
                    Some(term) => staged.postings.entry(term).or_default().push(position),
                    None => staged
                        .new_terms
                        .entry(token.text)
                        .or_default()
                        .push(position),
                }
            }
        }
        NodeKind::Element { name, .. } => {
            let label = alias.resolve(name).to_string();
            let Some(sid) = cursor.enter_existing(summary, &label) else {
                return Err(IndexError::UnknownPath(label));
            };
            let mark = *next_pos;
            for &child in &doc.node(node).children {
                walk(
                    doc, child, cursor, next_pos, staged, summary, alias, dictionary, analyzer,
                )?;
            }
            cursor.leave();
            let length = *next_pos - mark;
            if length > 0 {
                staged.elements.push((
                    sid,
                    ElementRef {
                        doc: staged.doc_id,
                        end: *next_pos - 1,
                        length,
                    },
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_summary::SummaryKind;

    /// Builds a frozen catalog over one seed document.
    fn frozen_catalog(seed: &str) -> (Summary, AliasMap, Dictionary, Analyzer) {
        let alias = AliasMap::identity();
        let analyzer = Analyzer::default();
        let mut summary = Summary::new(SummaryKind::Incoming);
        let mut dictionary = Dictionary::new();
        let doc = Document::parse(seed).unwrap();
        let mut cursor = SummaryCursor::new();
        let mut next = 0u32;
        #[allow(clippy::too_many_arguments)]
        fn seed_walk(
            doc: &Document,
            node: NodeId,
            cursor: &mut SummaryCursor,
            summary: &mut Summary,
            alias: &AliasMap,
            dictionary: &mut Dictionary,
            analyzer: Analyzer,
            next: &mut u32,
        ) {
            match &doc.node(node).kind {
                NodeKind::Text(text) => {
                    let (tokens, np) = analyzer.analyze_from(text, *next);
                    *next = np;
                    for t in tokens {
                        dictionary.intern(&t.text);
                    }
                }
                NodeKind::Element { name, .. } => {
                    let label = alias.resolve(name).to_string();
                    let sid = cursor.enter(summary, &label);
                    summary.record_element(sid);
                    for &child in &doc.node(node).children {
                        seed_walk(
                            doc, child, cursor, summary, alias, dictionary, analyzer, next,
                        );
                    }
                    cursor.leave();
                }
            }
        }
        seed_walk(
            &doc,
            doc.root(),
            &mut cursor,
            &mut summary,
            &alias,
            &mut dictionary,
            analyzer,
            &mut next,
        );
        (summary, alias, dictionary, analyzer)
    }

    #[test]
    fn staging_mirrors_builder_output() {
        let (summary, alias, dictionary, analyzer) =
            frozen_catalog("<a><b>xml retrieval</b><c>engines</c></a>");
        let staged = stage_document(
            7,
            "<a><b>xml systems</b><c>retrieval</c></a>",
            &summary,
            &alias,
            &dictionary,
            analyzer,
        )
        .unwrap();
        assert_eq!(staged.doc_id, 7);
        // a (len 3), b (len 2), c (len 1) — same spans the builder produces.
        let spans: Vec<(u32, u32)> = staged
            .elements
            .iter()
            .map(|(_, e)| (e.start(), e.end))
            .collect();
        assert!(spans.contains(&(0, 1)), "b spans tokens 0..=1");
        assert!(spans.contains(&(2, 2)), "c is token 2");
        assert!(spans.contains(&(0, 2)), "a spans all three");
        // "xml" and "retrieval" hit the base dictionary; "systems" is new.
        let xml_term = dictionary.lookup("xml").unwrap();
        assert_eq!(staged.postings[&xml_term].len(), 1);
        assert_eq!(staged.new_terms.len(), 1);
        let (new_term, positions) = staged.new_terms.iter().next().unwrap();
        assert!(dictionary.lookup(new_term).is_none());
        assert_eq!(positions.len(), 1);
    }

    #[test]
    fn unknown_path_is_a_typed_error() {
        let (summary, alias, dictionary, analyzer) = frozen_catalog("<a><b>text</b></a>");
        let err = stage_document(
            1,
            "<a><z>text</z></a>",
            &summary,
            &alias,
            &dictionary,
            analyzer,
        )
        .unwrap_err();
        assert!(matches!(err, IndexError::UnknownPath(ref l) if l == "z"));
    }

    #[test]
    fn matches_follow_era_inclusion_rule() {
        let (summary, alias, dictionary, analyzer) =
            frozen_catalog("<a><b>xml retrieval</b><c>engines</c></a>");
        let delta = DeltaIndex::new(5);
        let staged = stage_document(
            5,
            "<a><b>xml xml</b><c>engines</c></a>",
            &summary,
            &alias,
            &dictionary,
            analyzer,
        )
        .unwrap();
        delta.apply(staged);

        let b_sid = summary.sids_with_label("b")[0];
        let c_sid = summary.sids_with_label("c")[0];
        let xml = dictionary.lookup("xml").unwrap();
        let engines = dictionary.lookup("engin").unwrap();

        let m = delta.matches(&[b_sid, c_sid], &[xml, engines]);
        assert_eq!(m.len(), 2);
        let b = m.iter().find(|m| m.sid == b_sid).unwrap();
        assert_eq!(b.tf, vec![2, 0], "tf counts within the element span");
        let c = m.iter().find(|m| m.sid == c_sid).unwrap();
        assert_eq!(c.tf, vec![0, 1]);
        // An element containing no requested term is not emitted.
        assert!(delta.matches(&[c_sid], &[xml]).is_empty());
        assert_eq!(delta.list_entries(xml, b_sid), 1);
        assert_eq!(delta.list_entries(xml, c_sid), 0);
    }

    #[test]
    fn doc_id_allocation_fails_cleanly_at_the_boundary() {
        let delta = DeltaIndex::new(u32::MAX - 1);
        assert_eq!(delta.peek_next_doc_id().unwrap(), u32::MAX - 1);
        let doc = DeltaDoc {
            doc_id: u32::MAX - 1,
            xml: String::new(),
            elements: Vec::new(),
            postings: HashMap::new(),
            new_terms: HashMap::new(),
        };
        delta.apply(doc);
        assert!(matches!(
            delta.peek_next_doc_id(),
            Err(IndexError::DocIdsExhausted)
        ));
    }

    #[test]
    fn take_docs_drains_and_counts() {
        let delta = DeltaIndex::new(0);
        for id in 0..3 {
            delta.apply(DeltaDoc {
                doc_id: id,
                xml: "<a>x</a>".into(),
                elements: Vec::new(),
                postings: HashMap::new(),
                new_terms: HashMap::new(),
            });
        }
        assert_eq!(delta.doc_count(), 3);
        assert!(delta.approx_bytes() > 0);
        assert_eq!(delta.document(1), Some("<a>x</a>".to_string()));
        let drained = delta.take_docs();
        assert_eq!(drained.len(), 3);
        assert!(delta.is_empty());
        assert_eq!(delta.approx_bytes(), 0);
        assert_eq!(delta.folded_docs(), 3);
        assert_eq!(delta.peek_next_doc_id().unwrap(), 3);
    }
}
