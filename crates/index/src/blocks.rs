//! Block codec for the redundant RPL/ERPL lists.
//!
//! The seed layout stored **one B+tree record per entry** with a ~20-byte
//! uncompressed key, so every entry paid a full key compare on the scan path
//! and the advisor's byte budget (paper §4 — bytes are the currency of the
//! self-managing loop) bought far fewer lists than it should. This module
//! packs each `(term, sid)` list into a small number of records, each a
//! delta+varint-compressed **block** of up to [`BLOCK_CAPACITY`] entries with
//! a self-describing header that doubles as a skip pointer:
//!
//! ```text
//! key:  term · sid · block_no            (u32 BE each — 12 bytes)
//!
//! RPL block value (descending score ⇔ ascending inverted score bits):
//!   count                varint
//!   first_inv            u32 BE          (max score of the block)
//!   last_inv − first_inv varint          (min score — the skip bound)
//!   entry₀               doc · end · length          (varints)
//!   entryᵢ               inv_delta · doc · end · length
//!
//! ERPL block value (ascending (doc, end) element order):
//!   count                varint
//!   first_doc, first_end varint          (entry₀'s element position)
//!   last_doc − first_doc varint
//!   last_end             varint          (the skip bound for seek(pos))
//!   max_score            f32 LE
//!   entry₀               length varint · score f32 LE
//!   entryᵢ               doc_delta · (end_delta | end) · length · score
//!                        (end is a delta when doc_delta = 0, absolute
//!                         otherwise)
//! ```
//!
//! Iterators peek the header first: a TA sorted access can skip a whole RPL
//! block when even its *minimum* score clears the current threshold target,
//! and an ERPL `seek(pos)` skips blocks whose last element ends before
//! `pos` — without decoding a single entry.
//!
//! Decoding is strict: every span is validated, scores must be finite,
//! entry keys must be strictly increasing, the computed last key must equal
//! the header's, and the payload must be consumed exactly. Any mismatch is
//! `Corrupt`, never a wrong answer.

use trex_storage::codec::{
    get_u32, put_u32, read_varint_u32, score_from_inverted_bits, varint_len, write_varint,
};
use trex_storage::{Result, StorageError};
use trex_summary::Sid;
use trex_text::TermId;

use crate::encode::{validate_span, ElementRef, Position, RplEntry};

/// Maximum entries per block. 128 keeps a worst-case block within one page
/// cell and bounds the decode cost a single skip check can save.
pub const BLOCK_CAPACITY: usize = 128;

/// Maximum *entry payload* bytes per block (the header adds at most
/// [`HEADER_ALLOWANCE`] more). Worst-case varint entries (~20 B) would push
/// 128 entries past the storage engine's `MAX_VALUE_LEN` of 2048, so blocks
/// flush on whichever limit trips first.
pub const BLOCK_BYTE_BUDGET: usize = 1600;

/// Upper bound on either header's size; `BLOCK_BYTE_BUDGET + HEADER_ALLOWANCE`
/// must stay ≤ `MAX_VALUE_LEN`.
pub const HEADER_ALLOWANCE: usize = 32;

/// Split policy for the block encoders — parameterised so tests can force
/// many tiny blocks.
#[derive(Debug, Clone, Copy)]
pub struct BlockLimits {
    /// Flush after this many entries.
    pub max_entries: usize,
    /// Flush before the entry payload exceeds this many bytes.
    pub max_bytes: usize,
}

impl Default for BlockLimits {
    fn default() -> Self {
        BlockLimits {
            max_entries: BLOCK_CAPACITY,
            max_bytes: BLOCK_BYTE_BUDGET,
        }
    }
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// Encodes a block key `(term, sid, block_no)`. Ascending `block_no` order
/// equals list order, so a list's blocks are both point-addressable (lazy
/// fetch, per-list delete) and prefix-scannable.
pub fn block_key(term: TermId, sid: Sid, block_no: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(12);
    put_u32(&mut k, term);
    put_u32(&mut k, sid);
    put_u32(&mut k, block_no);
    k
}

/// Decodes a block key.
pub fn decode_block_key(key: &[u8]) -> Result<(TermId, Sid, u32)> {
    Ok((get_u32(key, 0)?, get_u32(key, 4)?, get_u32(key, 8)?))
}

// ---------------------------------------------------------------------------
// Normalisation
// ---------------------------------------------------------------------------

/// Sorts RPL entries into storage order — ascending `(inv_score, doc, end)`,
/// i.e. descending relevance — and deduplicates exact key collisions keeping
/// the *last* occurrence, reproducing the seed layout's B+tree
/// insert-replaces semantics.
pub fn normalize_rpl(entries: &[(ElementRef, f32)]) -> Vec<(u32, ElementRef)> {
    let mut v: Vec<(u32, ElementRef)> = entries
        .iter()
        .map(|&(e, score)| (trex_storage::codec::inverted_score_bits(score), e))
        .collect();
    v.sort_by_key(|&(inv, e)| (inv, e.doc, e.end));
    dedup_keep_last(v, |&(inv, e)| (inv, e.doc, e.end))
}

/// Sorts ERPL entries into storage order — ascending `(doc, end)` — and
/// deduplicates key collisions keeping the last occurrence.
pub fn normalize_erpl(entries: &[(ElementRef, f32)]) -> Vec<(ElementRef, f32)> {
    let mut v = entries.to_vec();
    v.sort_by_key(|&(e, _)| (e.doc, e.end));
    dedup_keep_last(v, |&(e, _)| (e.doc, e.end))
}

fn dedup_keep_last<T: Copy, K: PartialEq>(sorted: Vec<T>, key: impl Fn(&T) -> K) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(sorted.len());
    for item in sorted {
        match out.last() {
            Some(last) if key(last) == key(&item) => *out.last_mut().unwrap() = item,
            _ => out.push(item),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// RPL blocks
// ---------------------------------------------------------------------------

/// Header of one RPL block, decodable without touching the entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RplBlockHeader {
    /// Entries in the block (≥ 1).
    pub count: u32,
    /// Inverted score bits of the first (highest-scoring) entry.
    pub first_inv: u32,
    /// Inverted score bits of the last (lowest-scoring) entry — the skip
    /// bound: every score in the block is ≥ `score_of(last_inv)`.
    pub last_inv: u32,
}

impl RplBlockHeader {
    /// The block's maximum (first) score.
    pub fn max_score(&self) -> f32 {
        score_from_inverted_bits(self.first_inv)
    }

    /// The block's minimum (last) score.
    pub fn min_score(&self) -> f32 {
        score_from_inverted_bits(self.last_inv)
    }
}

/// Encodes `block` (a normalised, non-empty slice) as one RPL block value.
pub fn encode_rpl_block(block: &[(u32, ElementRef)]) -> Vec<u8> {
    assert!(!block.is_empty(), "RPL blocks hold at least one entry");
    let first_inv = block[0].0;
    let last_inv = block[block.len() - 1].0;
    let mut v = Vec::new();
    write_varint(&mut v, block.len() as u64);
    v.extend_from_slice(&first_inv.to_be_bytes());
    write_varint(&mut v, u64::from(last_inv - first_inv));
    let mut prev_inv: Option<u32> = None;
    for &(inv, e) in block {
        if let Some(p) = prev_inv {
            write_varint(&mut v, u64::from(inv - p));
        }
        write_varint(&mut v, u64::from(e.doc));
        write_varint(&mut v, u64::from(e.end));
        write_varint(&mut v, u64::from(e.length));
        prev_inv = Some(inv);
    }
    v
}

/// Decodes only the header of an RPL block value.
pub fn peek_rpl_header(value: &[u8]) -> Result<RplBlockHeader> {
    let (count, mut off) = read_varint_u32(value)?;
    if count == 0 {
        return Err(StorageError::Corrupt("empty RPL block".into()));
    }
    let first_inv = get_u32(value, off)?;
    off += 4;
    let (delta, _) = read_varint_u32(&value[off..])?;
    let last_inv = first_inv
        .checked_add(delta)
        .ok_or_else(|| StorageError::Corrupt("RPL block last-key overflow".into()))?;
    Ok(RplBlockHeader {
        count,
        first_inv,
        last_inv,
    })
}

/// Decodes a full RPL block into entries (descending score order), with
/// strict validation of ordering, spans, scores, and header consistency.
pub fn decode_rpl_block(term: TermId, sid: Sid, value: &[u8]) -> Result<Vec<RplEntry>> {
    let header = peek_rpl_header(value)?;
    let (_, mut off) = read_varint_u32(value)?;
    off += 4; // first_inv
    let (_, n) = read_varint_u32(&value[off..])?;
    off += n; // last_inv delta
    let mut entries = Vec::with_capacity(header.count as usize);
    let mut inv = header.first_inv;
    let mut prev: Option<(u32, ElementRef)> = None;
    for i in 0..header.count {
        if i > 0 {
            let (d, n) = read_varint_u32(&value[off..])?;
            off += n;
            inv = inv
                .checked_add(d)
                .ok_or_else(|| StorageError::Corrupt("RPL block score overflow".into()))?;
        }
        let (doc, n) = read_varint_u32(&value[off..])?;
        off += n;
        let (end, n) = read_varint_u32(&value[off..])?;
        off += n;
        let (length, n) = read_varint_u32(&value[off..])?;
        off += n;
        let element = validate_span(ElementRef { doc, end, length })?;
        if let Some((pinv, pe)) = prev {
            if (inv, element.doc, element.end) <= (pinv, pe.doc, pe.end) {
                return Err(StorageError::Corrupt("RPL block key order".into()));
            }
        }
        let score = score_from_inverted_bits(inv);
        if !score.is_finite() {
            return Err(StorageError::Corrupt("non-finite RPL score".into()));
        }
        entries.push(RplEntry {
            term,
            score,
            sid,
            element,
        });
        prev = Some((inv, element));
    }
    if inv != header.last_inv {
        return Err(StorageError::Corrupt("RPL block last-key mismatch".into()));
    }
    if off != value.len() {
        return Err(StorageError::Corrupt("RPL block trailing bytes".into()));
    }
    Ok(entries)
}

/// Splits a normalised RPL list into encoded block values under `limits`.
pub fn encode_rpl_list(normalized: &[(u32, ElementRef)], limits: BlockLimits) -> Vec<Vec<u8>> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut payload = 0usize;
    for (i, &(inv, e)) in normalized.iter().enumerate() {
        let prev = if i == start {
            None
        } else {
            Some(normalized[i - 1].0)
        };
        let entry_len = rpl_entry_len(prev, inv, e);
        if i > start && (i - start >= limits.max_entries || payload + entry_len > limits.max_bytes)
        {
            blocks.push(encode_rpl_block(&normalized[start..i]));
            start = i;
            payload = rpl_entry_len(None, inv, e);
        } else {
            payload += entry_len;
        }
    }
    if start < normalized.len() {
        blocks.push(encode_rpl_block(&normalized[start..]));
    }
    blocks
}

fn rpl_entry_len(prev_inv: Option<u32>, inv: u32, e: ElementRef) -> usize {
    let base = varint_len(u64::from(e.doc))
        + varint_len(u64::from(e.end))
        + varint_len(u64::from(e.length));
    match prev_inv {
        None => base,
        Some(p) => base + varint_len(u64::from(inv - p)),
    }
}

// ---------------------------------------------------------------------------
// ERPL blocks
// ---------------------------------------------------------------------------

/// Header of one ERPL block, decodable without touching the entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErplBlockHeader {
    /// Entries in the block (≥ 1).
    pub count: u32,
    /// End position of the block's first element.
    pub first: Position,
    /// End position of the block's last element — the skip bound for
    /// `seek(pos)`: every element in the block ends at or before it.
    pub last: Position,
    /// Maximum score in the block.
    pub max_score: f32,
}

/// Encodes `block` (a normalised, non-empty slice) as one ERPL block value.
pub fn encode_erpl_block(block: &[(ElementRef, f32)]) -> Vec<u8> {
    assert!(!block.is_empty(), "ERPL blocks hold at least one entry");
    let first = block[0].0;
    let last = block[block.len() - 1].0;
    let max_score = block
        .iter()
        .map(|&(_, s)| s)
        .fold(f32::NEG_INFINITY, f32::max);
    let mut v = Vec::new();
    write_varint(&mut v, block.len() as u64);
    write_varint(&mut v, u64::from(first.doc));
    write_varint(&mut v, u64::from(first.end));
    write_varint(&mut v, u64::from(last.doc - first.doc));
    write_varint(&mut v, u64::from(last.end));
    v.extend_from_slice(&max_score.to_le_bytes());
    let mut prev: Option<ElementRef> = None;
    for &(e, score) in block {
        if let Some(p) = prev {
            let doc_delta = e.doc - p.doc;
            write_varint(&mut v, u64::from(doc_delta));
            if doc_delta == 0 {
                write_varint(&mut v, u64::from(e.end - p.end));
            } else {
                write_varint(&mut v, u64::from(e.end));
            }
        }
        write_varint(&mut v, u64::from(e.length));
        v.extend_from_slice(&score.to_le_bytes());
        prev = Some(e);
    }
    v
}

/// Decodes only the header of an ERPL block value. Returns the header and
/// the payload offset where the entries begin.
pub fn peek_erpl_header(value: &[u8]) -> Result<(ErplBlockHeader, usize)> {
    let (count, mut off) = read_varint_u32(value)?;
    if count == 0 {
        return Err(StorageError::Corrupt("empty ERPL block".into()));
    }
    let (first_doc, n) = read_varint_u32(&value[off..])?;
    off += n;
    let (first_end, n) = read_varint_u32(&value[off..])?;
    off += n;
    let (doc_delta, n) = read_varint_u32(&value[off..])?;
    off += n;
    let (last_end, n) = read_varint_u32(&value[off..])?;
    off += n;
    let last_doc = first_doc
        .checked_add(doc_delta)
        .ok_or_else(|| StorageError::Corrupt("ERPL block last-doc overflow".into()))?;
    let end = off
        .checked_add(4)
        .ok_or_else(|| StorageError::Corrupt("ERPL header overflow".into()))?;
    if end > value.len() {
        return Err(StorageError::Corrupt("short ERPL block header".into()));
    }
    let max_score = f32::from_le_bytes(value[off..end].try_into().unwrap());
    if !max_score.is_finite() {
        return Err(StorageError::Corrupt("non-finite ERPL block max".into()));
    }
    Ok((
        ErplBlockHeader {
            count,
            first: Position {
                doc: first_doc,
                offset: first_end,
            },
            last: Position {
                doc: last_doc,
                offset: last_end,
            },
            max_score,
        },
        end,
    ))
}

/// Decodes a full ERPL block into entries (ascending element order), with
/// strict validation of ordering, spans, scores, and header consistency.
pub fn decode_erpl_block(term: TermId, sid: Sid, value: &[u8]) -> Result<Vec<RplEntry>> {
    let (header, mut off) = peek_erpl_header(value)?;
    let mut entries = Vec::with_capacity(header.count as usize);
    let mut doc = header.first.doc;
    let mut end = header.first.offset;
    let mut observed_max = f32::NEG_INFINITY;
    for i in 0..header.count {
        if i > 0 {
            let (doc_delta, n) = read_varint_u32(&value[off..])?;
            off += n;
            let (end_field, n) = read_varint_u32(&value[off..])?;
            off += n;
            if doc_delta == 0 {
                if end_field == 0 {
                    return Err(StorageError::Corrupt("ERPL block key order".into()));
                }
                end = end
                    .checked_add(end_field)
                    .ok_or_else(|| StorageError::Corrupt("ERPL block end overflow".into()))?;
            } else {
                doc = doc
                    .checked_add(doc_delta)
                    .ok_or_else(|| StorageError::Corrupt("ERPL block doc overflow".into()))?;
                end = end_field;
            }
        }
        let (length, n) = read_varint_u32(&value[off..])?;
        off += n;
        let score_end = off
            .checked_add(4)
            .ok_or_else(|| StorageError::Corrupt("ERPL block offset overflow".into()))?;
        if score_end > value.len() {
            return Err(StorageError::Corrupt("short ERPL block entry".into()));
        }
        let score = f32::from_le_bytes(value[off..score_end].try_into().unwrap());
        off = score_end;
        if !score.is_finite() {
            return Err(StorageError::Corrupt("non-finite ERPL score".into()));
        }
        observed_max = observed_max.max(score);
        let element = validate_span(ElementRef { doc, end, length })?;
        entries.push(RplEntry {
            term,
            score,
            sid,
            element,
        });
    }
    if (doc, end) != (header.last.doc, header.last.offset) {
        return Err(StorageError::Corrupt("ERPL block last-key mismatch".into()));
    }
    if observed_max.to_bits() != header.max_score.to_bits() {
        return Err(StorageError::Corrupt(
            "ERPL block max-score mismatch".into(),
        ));
    }
    if off != value.len() {
        return Err(StorageError::Corrupt("ERPL block trailing bytes".into()));
    }
    Ok(entries)
}

/// Splits a normalised ERPL list into encoded block values under `limits`.
pub fn encode_erpl_list(normalized: &[(ElementRef, f32)], limits: BlockLimits) -> Vec<Vec<u8>> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut payload = 0usize;
    for (i, &(e, _)) in normalized.iter().enumerate() {
        let entry_len = erpl_entry_len(
            if i == start {
                None
            } else {
                Some(normalized[i - 1].0)
            },
            e,
        );
        if i > start && (i - start >= limits.max_entries || payload + entry_len > limits.max_bytes)
        {
            blocks.push(encode_erpl_block(&normalized[start..i]));
            start = i;
            payload = erpl_entry_len(None, e);
        } else {
            payload += entry_len;
        }
    }
    if start < normalized.len() {
        blocks.push(encode_erpl_block(&normalized[start..]));
    }
    blocks
}

fn erpl_entry_len(prev: Option<ElementRef>, e: ElementRef) -> usize {
    let base = varint_len(u64::from(e.length)) + 4; // length + score
    match prev {
        None => base,
        Some(p) => {
            let doc_delta = e.doc - p.doc;
            let end_field = if doc_delta == 0 { e.end - p.end } else { e.end };
            base + varint_len(u64::from(doc_delta)) + varint_len(u64::from(end_field))
        }
    }
}

// ---------------------------------------------------------------------------
// Sizing
// ---------------------------------------------------------------------------

/// Blocks and on-disk bytes (keys + values) a normalised RPL list will
/// occupy under the default limits — shares the encoder with the write path,
/// so the advisor's cost estimates match `put_list` accounting exactly.
pub fn rpl_list_size(entries: &[(ElementRef, f32)]) -> (u64, u64) {
    let blocks = encode_rpl_list(&normalize_rpl(entries), BlockLimits::default());
    let bytes = blocks.iter().map(|b| (12 + b.len()) as u64).sum();
    (blocks.len() as u64, bytes)
}

/// Blocks and on-disk bytes for a normalised ERPL list; see [`rpl_list_size`].
pub fn erpl_list_size(entries: &[(ElementRef, f32)]) -> (u64, u64) {
    let blocks = encode_erpl_list(&normalize_erpl(entries), BlockLimits::default());
    let bytes = blocks.iter().map(|b| (12 + b.len()) as u64).sum();
    (blocks.len() as u64, bytes)
}

/// Bytes the *seed* one-record-per-entry layout would charge for an RPL list
/// (20-byte key + varint length value per entry, after normalisation) — kept
/// for the compression-ratio benchmark.
pub fn seed_rpl_list_bytes(entries: &[(ElementRef, f32)]) -> u64 {
    normalize_rpl(entries)
        .iter()
        .map(|&(_, e)| (20 + varint_len(u64::from(e.length))) as u64)
        .sum()
}

/// Seed-layout bytes for an ERPL list (16-byte key + 4-byte score +
/// varint length per entry); see [`seed_rpl_list_bytes`].
pub fn seed_erpl_list_bytes(entries: &[(ElementRef, f32)]) -> u64 {
    normalize_erpl(entries)
        .iter()
        .map(|&(e, _)| (16 + 4 + varint_len(u64::from(e.length))) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(doc: u32, end: u32, length: u32) -> ElementRef {
        ElementRef { doc, end, length }
    }

    fn rpl_entries(list: &[(ElementRef, f32)]) -> Vec<(u32, ElementRef)> {
        normalize_rpl(list)
    }

    #[test]
    fn rpl_block_round_trip_preserves_descending_order() {
        let list = vec![
            (el(0, 5, 2), 0.5),
            (el(0, 9, 3), 2.5),
            (el(1, 4, 1), 1.0),
            (el(2, 7, 2), 2.5),
        ];
        let norm = rpl_entries(&list);
        let value = encode_rpl_block(&norm);
        let back = decode_rpl_block(7, 3, &value).unwrap();
        assert_eq!(back.len(), 4);
        let scores: Vec<f32> = back.iter().map(|e| e.score).collect();
        assert_eq!(scores, vec![2.5, 2.5, 1.0, 0.5]);
        assert!(back.iter().all(|e| e.term == 7 && e.sid == 3));
        let header = peek_rpl_header(&value).unwrap();
        assert_eq!(header.count, 4);
        assert_eq!(header.max_score(), 2.5);
        assert_eq!(header.min_score(), 0.5);
    }

    #[test]
    fn erpl_block_round_trip_preserves_position_order() {
        let list = vec![
            (el(1, 4, 1), 1.0),
            (el(0, 9, 3), 2.5),
            (el(0, 5, 2), 0.5),
            (el(1, 8, 4), 0.25),
        ];
        let norm = normalize_erpl(&list);
        let value = encode_erpl_block(&norm);
        let back = decode_erpl_block(7, 3, &value).unwrap();
        let got: Vec<(u32, u32, f32)> = back
            .iter()
            .map(|e| (e.element.doc, e.element.end, e.score))
            .collect();
        assert_eq!(
            got,
            vec![(0, 5, 0.5), (0, 9, 2.5), (1, 4, 1.0), (1, 8, 0.25)]
        );
        let (header, _) = peek_erpl_header(&value).unwrap();
        assert_eq!(header.count, 4);
        assert_eq!(header.first, Position { doc: 0, offset: 5 });
        assert_eq!(header.last, Position { doc: 1, offset: 8 });
        assert_eq!(header.max_score, 2.5);
    }

    #[test]
    fn normalization_dedups_keeping_last() {
        // Same (doc, end) twice: the later entry wins, like B+tree replace.
        let list = vec![(el(0, 5, 2), 1.0), (el(0, 5, 3), 1.0)];
        let erpl = normalize_erpl(&list);
        assert_eq!(erpl, vec![(el(0, 5, 3), 1.0)]);
        // RPL keys include the score: different scores are distinct entries.
        assert_eq!(rpl_entries(&list).len(), 1); // same score → same key
        let distinct = vec![(el(0, 5, 2), 1.0), (el(0, 5, 2), 2.0)];
        assert_eq!(rpl_entries(&distinct).len(), 2);
    }

    #[test]
    fn list_splits_respect_entry_and_byte_limits() {
        let list: Vec<(ElementRef, f32)> =
            (0..40).map(|i| (el(0, i * 2 + 1, 2), i as f32)).collect();
        let limits = BlockLimits {
            max_entries: 16,
            max_bytes: usize::MAX,
        };
        let blocks = encode_rpl_list(&rpl_entries(&list), limits);
        assert_eq!(blocks.len(), 3); // 16 + 16 + 8
        let total: usize = blocks
            .iter()
            .map(|b| decode_rpl_block(1, 1, b).unwrap().len())
            .sum();
        assert_eq!(total, 40);

        let tiny = BlockLimits {
            max_entries: usize::MAX,
            max_bytes: 24,
        };
        let blocks = encode_erpl_list(&normalize_erpl(&list), tiny);
        assert!(blocks.len() > 1);
        for b in &blocks {
            assert!(b.len() <= 24 + HEADER_ALLOWANCE, "block size {}", b.len());
        }
        let total: usize = blocks
            .iter()
            .map(|b| decode_erpl_block(1, 1, b).unwrap().len())
            .sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn default_limits_never_exceed_max_value_len() {
        // Worst-case entries: every varint field maximal.
        let list: Vec<(ElementRef, f32)> = (0..300)
            .map(|i| {
                (
                    el(u32::MAX - 1, u32::MAX - 1, u32::MAX - 300 + i),
                    f32::MAX - (i as f32) * 1e31,
                )
            })
            .collect();
        for b in encode_rpl_list(&rpl_entries(&list), BlockLimits::default()) {
            assert!(b.len() <= trex_storage::MAX_VALUE_LEN, "rpl {}", b.len());
        }
        for b in encode_erpl_list(&normalize_erpl(&list), BlockLimits::default()) {
            assert!(b.len() <= trex_storage::MAX_VALUE_LEN, "erpl {}", b.len());
        }
    }

    #[test]
    fn corrupt_blocks_are_rejected() {
        let list = vec![(el(0, 5, 2), 1.0), (el(0, 9, 3), 2.0)];
        let rpl = encode_rpl_block(&rpl_entries(&list));
        let erpl = encode_erpl_block(&normalize_erpl(&list));

        // Truncations at every length.
        for cut in 0..rpl.len() {
            assert!(decode_rpl_block(1, 1, &rpl[..cut]).is_err(), "cut {cut}");
        }
        for cut in 0..erpl.len() {
            assert!(decode_erpl_block(1, 1, &erpl[..cut]).is_err(), "cut {cut}");
        }

        // Trailing garbage.
        let mut long = rpl.clone();
        long.push(0);
        assert!(decode_rpl_block(1, 1, &long).is_err());
        let mut long = erpl.clone();
        long.push(0);
        assert!(decode_erpl_block(1, 1, &long).is_err());

        // NaN score smuggled into the RPL header's fixed score field.
        let mut nan = rpl.clone();
        let off = varint_len(2); // count varint
        nan[off..off + 4]
            .copy_from_slice(&trex_storage::codec::inverted_score_bits(f32::NAN).to_be_bytes());
        assert!(decode_rpl_block(1, 1, &nan).is_err());

        // Zero count.
        assert!(decode_rpl_block(1, 1, &[0]).is_err());
        assert!(decode_erpl_block(1, 1, &[0]).is_err());
    }

    #[test]
    fn block_keys_order_by_term_sid_block() {
        let a = block_key(1, 2, 3);
        let b = block_key(1, 2, 4);
        let c = block_key(1, 3, 0);
        let d = block_key(2, 0, 0);
        assert!(a < b && b < c && c < d);
        assert_eq!(decode_block_key(&a).unwrap(), (1, 2, 3));
    }

    #[test]
    fn sizing_matches_encoder_and_beats_seed_layout() {
        let list: Vec<(ElementRef, f32)> = (0..500)
            .map(|i| (el(i / 50, (i % 50) * 3 + 2, 3), (i % 17) as f32 * 0.5))
            .collect();
        let (blocks, bytes) = rpl_list_size(&list);
        let encoded = encode_rpl_list(&rpl_entries(&list), BlockLimits::default());
        assert_eq!(blocks, encoded.len() as u64);
        assert_eq!(
            bytes,
            encoded.iter().map(|b| (12 + b.len()) as u64).sum::<u64>()
        );
        assert!(bytes * 2 <= seed_rpl_list_bytes(&list), "rpl ratio");
        let (_, ebytes) = erpl_list_size(&list);
        assert!(ebytes * 2 <= seed_erpl_list_bytes(&list), "erpl ratio");
    }
}
