//! The maintenance gate: an epoch-stamped reader–writer lock that lets the
//! online self-manager rewrite redundant lists *while queries are served*.
//!
//! The B+tree underneath has per-page latches but no lock coupling, so a
//! structural modification (page split during `put_list`, page frees during
//! `drop_list`) racing a concurrent descent is unsafe. The gate restores
//! safety with two rules:
//!
//! * every query evaluation holds a **read** guard for its whole lifetime
//!   (translation-to-answers, including the `rpls_cover`/`erpls_cover`
//!   checks that decide the strategy), so a coverage check and the
//!   evaluation it gates see one consistent generation of lists;
//! * every list mutation (one `put_list` or `drop_list`) holds a **write**
//!   guard, published atomically by bumping the generation stamp on release.
//!
//! Writers therefore never stop the world for a whole reconcile cycle —
//! they interleave list-by-list with queries, and a query that lands
//! between two mutations simply observes partial coverage and falls back
//! to ERA (correct answers, never an error).
//!
//! The generation stamp ([`Maintenance::generation`]) is the epoch the
//! registry contents belong to: unchanged stamp ⇒ unchanged list set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use trex_obs::Telemetry;

/// Epoch-stamped reader–writer gate between query evaluation (readers) and
/// redundant-list maintenance (writers). One per [`crate::TrexIndex`].
#[derive(Default)]
pub struct Maintenance {
    gate: RwLock<()>,
    /// Shared so readiness surfaces (`/readyz`) can report the generation
    /// without holding a reference to the whole index; see
    /// [`Maintenance::generation_cell`].
    generation: Arc<AtomicU64>,
    /// Telemetry sink for gate-wait latencies (`maint.read_gate_wait` /
    /// `maint.write_gate_wait`); `None` for bare gates in unit tests.
    telemetry: Option<Arc<Telemetry>>,
}

/// Shared guard: list maintenance is excluded while this is alive.
pub struct ReadGuard<'a>(#[allow(dead_code)] RwLockReadGuard<'a, ()>);

/// Exclusive guard: queries are excluded while this is alive; dropping it
/// bumps the generation stamp, publishing the mutation.
pub struct WriteGuard<'a> {
    #[allow(dead_code)]
    guard: RwLockWriteGuard<'a, ()>,
    generation: &'a AtomicU64,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.generation.fetch_add(1, Ordering::Release);
    }
}

impl Maintenance {
    /// A fresh gate at generation zero, without telemetry.
    pub fn new() -> Maintenance {
        Maintenance::default()
    }

    /// A fresh gate recording its wait times into `telemetry`.
    pub fn with_telemetry(telemetry: Arc<Telemetry>) -> Maintenance {
        Maintenance {
            telemetry: Some(telemetry),
            ..Maintenance::default()
        }
    }

    /// Enters a read-side critical section (query evaluation). Cheap and
    /// shared; concurrent readers never block each other.
    ///
    /// Do **not** acquire while already holding a guard on the same thread:
    /// the underlying `std` lock is not reentrant and a waiting writer can
    /// deadlock a recursive read.
    pub fn enter_read(&self) -> ReadGuard<'_> {
        let sw = match &self.telemetry {
            Some(t) => t.maint.start(),
            None => trex_obs::Stopwatch::disabled(),
        };
        let guard = ReadGuard(self.gate.read());
        if let Some(t) = &self.telemetry {
            t.maint.read_gate_wait.observe(&sw);
        }
        guard
    }

    /// Enters a write-side critical section (one list mutation). Blocks
    /// until every in-flight query drains; new queries block until release.
    pub fn enter_write(&self) -> WriteGuard<'_> {
        let sw = match &self.telemetry {
            Some(t) => t.maint.start(),
            None => trex_obs::Stopwatch::disabled(),
        };
        let guard = WriteGuard {
            guard: self.gate.write(),
            generation: &self.generation,
        };
        if let Some(t) = &self.telemetry {
            t.maint.write_gate_wait.observe(&sw);
        }
        guard
    }

    /// The current list-set generation: bumped once per completed mutation.
    /// Two equal readings with no writer in between saw the same list set.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The shared generation cell itself, for surfaces (readiness, cycle
    /// records) that report the generation without reaching through the
    /// index. Read with `Ordering::Acquire` to pair with the write-guard's
    /// release bump.
    pub fn generation_cell(&self) -> Arc<AtomicU64> {
        self.generation.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn generation_bumps_per_write_not_per_read() {
        let m = Maintenance::new();
        assert_eq!(m.generation(), 0);
        drop(m.enter_read());
        assert_eq!(m.generation(), 0);
        drop(m.enter_write());
        drop(m.enter_write());
        assert_eq!(m.generation(), 2);
    }

    #[test]
    fn writer_waits_for_reader() {
        let m = Maintenance::new();
        let wrote = AtomicBool::new(false);
        std::thread::scope(|s| {
            let guard = m.enter_read();
            s.spawn(|| {
                let _w = m.enter_write();
                wrote.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(!wrote.load(Ordering::SeqCst), "writer ran under a reader");
            drop(guard);
        });
        assert!(wrote.load(Ordering::SeqCst));
        assert_eq!(m.generation(), 1);
    }

    #[test]
    fn readers_share_the_gate() {
        let m = Maintenance::new();
        let a = m.enter_read();
        let b = m.enter_read();
        drop(a);
        drop(b);
    }
}
