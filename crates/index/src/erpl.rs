//! The `ERPLs` table: element-relevance posting lists in position order
//! (paper §2.2), consumed by the Merge algorithm.

use std::sync::Arc;

use trex_obs::IndexCounters;
use trex_storage::{Result, Store, Table};
use trex_summary::Sid;
use trex_text::TermId;

use crate::encode::{decode_erpl, erpl_key, erpl_value, ElementRef, RplEntry};
use crate::registry::{ListRegistry, ListStats};

/// Name of the data table inside the store.
pub const ERPLS_TABLE: &str = "erpls";
/// Name of the registry table inside the store.
pub const ERPLS_REGISTRY_TABLE: &str = "erpls_registry";

/// Write/read access to the `ERPLs` table.
pub struct ErplTable {
    table: Table,
    registry: ListRegistry,
    obs: Arc<IndexCounters>,
}

impl ErplTable {
    /// Opens (creating on first use) the ERPL tables of `store`.
    pub fn open(store: &Store) -> Result<ErplTable> {
        Ok(ErplTable {
            table: store.open_or_create_table(ERPLS_TABLE)?,
            registry: ListRegistry::new(store.open_or_create_table(ERPLS_REGISTRY_TABLE)?),
            obs: Arc::new(IndexCounters::new()),
        })
    }

    /// Reports decode work into `obs` (shared by every table of an index)
    /// instead of this table's private counter group.
    pub fn with_counters(mut self, obs: Arc<IndexCounters>) -> ErplTable {
        self.obs = obs;
        self
    }

    /// Materialises the complete list of `(term, sid)` in position order.
    /// Replaces an existing list for the same pair.
    pub fn put_list(
        &mut self,
        term: TermId,
        sid: Sid,
        entries: &[(ElementRef, f32)],
    ) -> Result<()> {
        if self.registry.contains(term, sid)? {
            self.drop_list(term, sid)?;
        }
        let mut bytes = 0u64;
        for &(element, score) in entries {
            debug_assert!(score.is_finite() && score >= 0.0);
            let key = erpl_key(term, sid, element);
            let value = erpl_value(score, element.length);
            bytes += (key.len() + value.len()) as u64;
            self.table.insert(&key, &value)?;
        }
        self.registry.put(
            term,
            sid,
            ListStats {
                entries: entries.len() as u64,
                bytes,
            },
        )
    }

    /// Whether the list for `(term, sid)` is materialised.
    pub fn has_list(&self, term: TermId, sid: Sid) -> Result<bool> {
        self.registry.contains(term, sid)
    }

    /// Size bookkeeping for `(term, sid)`.
    pub fn list_stats(&self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        self.registry.get(term, sid)
    }

    /// Drops the materialised list of `(term, sid)`.
    pub fn drop_list(&mut self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        let Some(stats) = self.registry.remove(term, sid)? else {
            return Ok(None);
        };
        let mut doomed = Vec::new();
        let mut cursor = self.table.seek(&erpl_key(
            term,
            sid,
            ElementRef {
                doc: 0,
                end: 0,
                length: 1,
            },
        ))?;
        while let Some((key, value)) = cursor.next_entry()? {
            let entry = decode_erpl(&key, &value)?;
            if entry.term != term || entry.sid != sid {
                break;
            }
            doomed.push(key);
        }
        for key in doomed {
            self.table.delete(&key)?;
        }
        Ok(Some(stats))
    }

    /// Iterator over the list of `(term, sid)` in end-position order.
    pub fn iter_list(&self, term: TermId, sid: Sid) -> Result<ErplIter> {
        let cursor = self.table.seek(&erpl_key(
            term,
            sid,
            ElementRef {
                doc: 0,
                end: 0,
                length: 1,
            },
        ))?;
        Ok(ErplIter {
            cursor,
            term,
            sid,
            obs: self.obs.clone(),
        })
    }

    /// Total bytes across every materialised ERPL.
    pub fn total_bytes(&self) -> Result<u64> {
        self.registry.total_bytes()
    }

    /// Every materialised (term, sid) pair with its stats.
    pub fn lists(&self) -> Result<Vec<(TermId, Sid, ListStats)>> {
        self.registry.all()
    }
}

/// Position-order iterator over one (term, sid) list.
pub struct ErplIter {
    cursor: trex_storage::Cursor,
    term: TermId,
    sid: Sid,
    obs: Arc<IndexCounters>,
}

impl ErplIter {
    /// The next entry, or `None` when the list is exhausted.
    pub fn next_entry(&mut self) -> Result<Option<RplEntry>> {
        match self.cursor.next_entry()? {
            Some((key, value)) => {
                let entry = decode_erpl(&key, &value)?;
                if entry.term != self.term || entry.sid != self.sid {
                    return Ok(None);
                }
                self.obs.erpl_entries.incr();
                self.obs.erpl_bytes.add((key.len() + value.len()) as u64);
                Ok(Some(entry))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_erpls<R>(name: &str, f: impl FnOnce(&mut ErplTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-erpl-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t = ErplTable::open(&store).unwrap();
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn el(doc: u32, end: u32, length: u32) -> ElementRef {
        ElementRef { doc, end, length }
    }

    #[test]
    fn iteration_is_position_order_within_list() {
        with_erpls("order", |t| {
            t.put_list(
                1,
                10,
                &[(el(1, 4, 1), 1.0), (el(0, 9, 3), 2.5), (el(0, 5, 2), 0.5)],
            )
            .unwrap();
            let mut it = t.iter_list(1, 10).unwrap();
            let mut got = Vec::new();
            while let Some(e) = it.next_entry().unwrap() {
                got.push((e.element.doc, e.element.end, e.score));
            }
            assert_eq!(got, vec![(0, 5, 0.5), (0, 9, 2.5), (1, 4, 1.0)]);
        });
    }

    #[test]
    fn lists_are_isolated_by_term_and_sid() {
        with_erpls("isolate", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 1.0)]).unwrap();
            t.put_list(1, 11, &[(el(0, 6, 2), 2.0)]).unwrap();
            t.put_list(2, 10, &[(el(0, 7, 2), 3.0)]).unwrap();
            let mut it = t.iter_list(1, 10).unwrap();
            assert_eq!(it.next_entry().unwrap().unwrap().score, 1.0);
            assert!(it.next_entry().unwrap().is_none());
        });
    }

    #[test]
    fn drop_list_frees_registry_and_entries() {
        with_erpls("drop", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 1.0), (el(0, 9, 1), 2.0)])
                .unwrap();
            let stats = t.drop_list(1, 10).unwrap().unwrap();
            assert_eq!(stats.entries, 2);
            assert!(!t.has_list(1, 10).unwrap());
            let mut it = t.iter_list(1, 10).unwrap();
            assert!(it.next_entry().unwrap().is_none());
            assert_eq!(t.total_bytes().unwrap(), 0);
        });
    }

    #[test]
    fn missing_list_iterates_empty() {
        with_erpls("missing", |t| {
            let mut it = t.iter_list(5, 5).unwrap();
            assert!(it.next_entry().unwrap().is_none());
        });
    }
}
