//! The `ERPLs` table: element-relevance posting lists in position order
//! (paper §2.2), consumed by the Merge algorithm.
//!
//! Each `(term, sid)` list is stored as block records (see [`crate::blocks`])
//! keyed `(term, sid, block_no)`. The iterator decodes blocks lazily and
//! `seek(pos)` skips blocks whose header proves every contained element ends
//! before `pos`.

use std::sync::Arc;

use trex_obs::IndexCounters;
use trex_storage::{Result, StorageError, Store, Table};
use trex_summary::Sid;
use trex_text::TermId;

use crate::blocks::{
    block_key, decode_erpl_block, encode_erpl_list, normalize_erpl, peek_erpl_header, BlockLimits,
};
use crate::encode::{ElementRef, Position, RplEntry};
use crate::registry::{ListRegistry, ListStats};

/// Name of the data table inside the store.
pub const ERPLS_TABLE: &str = "erpls";
/// Name of the registry table inside the store.
pub const ERPLS_REGISTRY_TABLE: &str = "erpls_registry";

/// Write/read access to the `ERPLs` table.
pub struct ErplTable {
    table: Table,
    registry: ListRegistry,
    obs: Arc<IndexCounters>,
    /// Test-only fault injection: error after this many block inserts.
    fail_after: Option<u32>,
}

impl ErplTable {
    /// Opens (creating on first use) the ERPL tables of `store`.
    pub fn open(store: &Store) -> Result<ErplTable> {
        Ok(ErplTable {
            table: store.open_or_create_table(ERPLS_TABLE)?,
            registry: ListRegistry::new(store.open_or_create_table(ERPLS_REGISTRY_TABLE)?),
            obs: Arc::new(IndexCounters::new()),
            fail_after: None,
        })
    }

    /// Reports decode work into `obs` (shared by every table of an index)
    /// instead of this table's private counter group.
    pub fn with_counters(mut self, obs: Arc<IndexCounters>) -> ErplTable {
        self.obs = obs;
        self
    }

    /// Makes the `n`-th next block insert fail — exercises the write path's
    /// failure atomicity in regression tests.
    #[doc(hidden)]
    pub fn fail_after_inserts(&mut self, n: u32) {
        self.fail_after = Some(n);
    }

    /// Materialises the complete list of `(term, sid)` in position order.
    /// Replaces an existing list for the same pair. Failure-atomic with the
    /// same registry-first stamping + rollback protocol as
    /// [`crate::rpl::RplTable::put_list`].
    pub fn put_list(
        &mut self,
        term: TermId,
        sid: Sid,
        entries: &[(ElementRef, f32)],
    ) -> Result<()> {
        debug_assert!(entries
            .iter()
            .all(|&(_, score)| score.is_finite() && score >= 0.0));
        if self.registry.contains(term, sid)? {
            self.drop_list(term, sid)?;
        }
        let normalized = normalize_erpl(entries);
        let encoded = encode_erpl_list(&normalized, BlockLimits::default());
        let stats = ListStats {
            entries: normalized.len() as u64,
            bytes: encoded.iter().map(|b| (12 + b.len()) as u64).sum(),
            blocks: encoded.len() as u64,
        };
        self.registry.put(term, sid, stats)?;
        for (no, value) in encoded.iter().enumerate() {
            if let Err(e) = self.insert_block(term, sid, no as u32, value) {
                for undo in 0..=no as u32 {
                    let _ = self.table.delete(&block_key(term, sid, undo));
                }
                let _ = self.registry.remove(term, sid);
                return Err(e);
            }
        }
        Ok(())
    }

    fn insert_block(&mut self, term: TermId, sid: Sid, no: u32, value: &[u8]) -> Result<()> {
        if let Some(left) = self.fail_after.as_mut() {
            if *left == 0 {
                return Err(StorageError::Corrupt(
                    "injected block insert failure".into(),
                ));
            }
            *left -= 1;
        }
        self.table.insert(&block_key(term, sid, no), value)
    }

    /// Whether the list for `(term, sid)` is materialised.
    pub fn has_list(&self, term: TermId, sid: Sid) -> Result<bool> {
        self.registry.contains(term, sid)
    }

    /// Size bookkeeping for `(term, sid)`.
    pub fn list_stats(&self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        self.registry.get(term, sid)
    }

    /// Drops the materialised list of `(term, sid)`: `blocks` point deletes.
    pub fn drop_list(&mut self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        let Some(stats) = self.registry.remove(term, sid)? else {
            return Ok(None);
        };
        for no in 0..stats.blocks {
            self.table.delete(&block_key(term, sid, no as u32))?;
        }
        Ok(Some(stats))
    }

    /// Iterator over the list of `(term, sid)` in end-position order.
    pub fn iter_list(&self, term: TermId, sid: Sid) -> Result<ErplIter<'_>> {
        let blocks = self.registry.get(term, sid)?.map(|s| s.blocks).unwrap_or(0);
        Ok(ErplIter {
            table: &self.table,
            obs: self.obs.clone(),
            term,
            sid,
            blocks,
            next_block: 0,
            entries: Vec::new(),
            pos: 0,
        })
    }

    /// Total bytes across every materialised ERPL.
    pub fn total_bytes(&self) -> Result<u64> {
        self.registry.total_bytes()
    }

    /// Every materialised (term, sid) pair with its stats.
    pub fn lists(&self) -> Result<Vec<(TermId, Sid, ListStats)>> {
        self.registry.all()
    }
}

/// Position-order iterator over one (term, sid) list, decoding block records
/// lazily.
pub struct ErplIter<'a> {
    table: &'a Table,
    obs: Arc<IndexCounters>,
    term: TermId,
    sid: Sid,
    blocks: u64,
    next_block: u64,
    entries: Vec<RplEntry>,
    pos: usize,
}

impl ErplIter<'_> {
    /// The next entry, or `None` when the list is exhausted.
    pub fn next_entry(&mut self) -> Result<Option<RplEntry>> {
        while self.pos >= self.entries.len() {
            if self.next_block >= self.blocks {
                return Ok(None);
            }
            let value = self.fetch_block_value(self.next_block as u32)?;
            self.entries = decode_erpl_block(self.term, self.sid, &value)?;
            self.pos = 0;
            self.next_block += 1;
        }
        let entry = self.entries[self.pos];
        self.pos += 1;
        self.obs.erpl_entries.incr();
        Ok(Some(entry))
    }

    /// Positions the iterator at the first element whose end position is
    /// `>= pos`, skipping whole blocks via their headers without decoding
    /// them. Only moves forward; elements already passed stay passed. The
    /// entries yielded afterwards are byte-identical to a full scan that
    /// discarded everything ending before `pos`.
    pub fn seek(&mut self, pos: Position) -> Result<()> {
        loop {
            // Advance within the decoded block first.
            while self.pos < self.entries.len()
                && self.entries[self.pos].element.end_position() < pos
            {
                self.pos += 1;
            }
            if self.pos < self.entries.len() || self.next_block >= self.blocks {
                return Ok(());
            }
            let value = self.fetch_block_value(self.next_block as u32)?;
            let (header, _) = peek_erpl_header(&value)?;
            self.next_block += 1;
            if header.last < pos {
                // Every element in the block ends before `pos`: skip it
                // without decoding a single entry.
                self.entries.clear();
                self.pos = 0;
                continue;
            }
            self.entries = decode_erpl_block(self.term, self.sid, &value)?;
            self.pos = 0;
        }
    }

    fn fetch_block_value(&self, no: u32) -> Result<Vec<u8>> {
        let key = block_key(self.term, self.sid, no);
        let value = self.table.get(&key)?.ok_or_else(|| {
            StorageError::Corrupt(format!(
                "missing ERPL block {no} of term {} sid {}",
                self.term, self.sid
            ))
        })?;
        self.obs.erpl_blocks.incr();
        self.obs.erpl_bytes.add((key.len() + value.len()) as u64);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_erpls<R>(name: &str, f: impl FnOnce(&mut ErplTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-erpl-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t = ErplTable::open(&store).unwrap();
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn el(doc: u32, end: u32, length: u32) -> ElementRef {
        ElementRef { doc, end, length }
    }

    fn drain(it: &mut ErplIter<'_>) -> Vec<RplEntry> {
        let mut out = Vec::new();
        while let Some(e) = it.next_entry().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn iteration_is_position_order_within_list() {
        with_erpls("order", |t| {
            t.put_list(
                1,
                10,
                &[(el(1, 4, 1), 1.0), (el(0, 9, 3), 2.5), (el(0, 5, 2), 0.5)],
            )
            .unwrap();
            let mut it = t.iter_list(1, 10).unwrap();
            let got: Vec<(u32, u32, f32)> = drain(&mut it)
                .iter()
                .map(|e| (e.element.doc, e.element.end, e.score))
                .collect();
            assert_eq!(got, vec![(0, 5, 0.5), (0, 9, 2.5), (1, 4, 1.0)]);
        });
    }

    #[test]
    fn lists_are_isolated_by_term_and_sid() {
        with_erpls("isolate", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 1.0)]).unwrap();
            t.put_list(1, 11, &[(el(0, 6, 2), 2.0)]).unwrap();
            t.put_list(2, 10, &[(el(0, 7, 2), 3.0)]).unwrap();
            let mut it = t.iter_list(1, 10).unwrap();
            assert_eq!(it.next_entry().unwrap().unwrap().score, 1.0);
            assert!(it.next_entry().unwrap().is_none());
        });
    }

    #[test]
    fn drop_list_frees_registry_and_entries() {
        with_erpls("drop", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 1.0), (el(0, 9, 1), 2.0)])
                .unwrap();
            let stats = t.drop_list(1, 10).unwrap().unwrap();
            assert_eq!(stats.entries, 2);
            assert!(!t.has_list(1, 10).unwrap());
            let mut it = t.iter_list(1, 10).unwrap();
            assert!(it.next_entry().unwrap().is_none());
            assert_eq!(t.total_bytes().unwrap(), 0);
        });
    }

    #[test]
    fn missing_list_iterates_empty() {
        with_erpls("missing", |t| {
            let mut it = t.iter_list(5, 5).unwrap();
            assert!(it.next_entry().unwrap().is_none());
        });
    }

    #[test]
    fn long_lists_split_and_round_trip() {
        with_erpls("split", |t| {
            let entries: Vec<(ElementRef, f32)> = (0..900)
                .map(|i| (el(i / 90, (i % 90) * 4 + 3, 4), (i % 23) as f32 * 0.5))
                .collect();
            t.put_list(1, 10, &entries).unwrap();
            let stats = t.list_stats(1, 10).unwrap().unwrap();
            assert_eq!(stats.entries, 900);
            assert!(stats.blocks > 1);
            let mut it = t.iter_list(1, 10).unwrap();
            let got = drain(&mut it);
            assert_eq!(got.len(), 900);
            assert!(got.windows(2).all(
                |w| (w[0].element.doc, w[0].element.end) < (w[1].element.doc, w[1].element.end)
            ));
        });
    }

    #[test]
    fn seek_matches_full_scan() {
        with_erpls("seek", |t| {
            let entries: Vec<(ElementRef, f32)> = (0..700)
                .map(|i| (el(i / 70, (i % 70) * 3 + 2, 3), (i % 13) as f32))
                .collect();
            t.put_list(1, 10, &entries).unwrap();
            for pos in [
                Position { doc: 0, offset: 0 },
                Position { doc: 3, offset: 17 },
                Position {
                    doc: 7,
                    offset: 100,
                },
                Position { doc: 99, offset: 0 },
            ] {
                let mut scan = t.iter_list(1, 10).unwrap();
                let expected: Vec<RplEntry> = drain(&mut scan)
                    .into_iter()
                    .filter(|e| e.element.end_position() >= pos)
                    .collect();
                let mut seeked = t.iter_list(1, 10).unwrap();
                seeked.seek(pos).unwrap();
                assert_eq!(drain(&mut seeked), expected, "pos {pos:?}");
            }
        });
    }

    #[test]
    fn failed_put_list_leaves_no_orphans() {
        with_erpls("atomic", |t| {
            let entries: Vec<(ElementRef, f32)> = (0..500)
                .map(|i| (el(0, i * 2 + 1, 2), (i % 7) as f32))
                .collect();
            t.fail_after_inserts(1);
            assert!(t.put_list(1, 10, &entries).is_err());
            t.fail_after = None;
            assert!(!t.has_list(1, 10).unwrap());
            assert_eq!(t.total_bytes().unwrap(), 0);
            let mut it = t.iter_list(1, 10).unwrap();
            assert!(it.next_entry().unwrap().is_none());
            t.put_list(1, 10, &entries).unwrap();
            let mut it = t.iter_list(1, 10).unwrap();
            assert_eq!(drain(&mut it).len(), 500);
        });
    }
}
