//! The `RPLs` table: relevance posting lists in descending score order
//! (paper §2.2), with per-(term, sid) materialisation tracking.
//!
//! Each list is stored as a handful of block records (see [`crate::blocks`])
//! keyed `(term, sid, block_no)`. The term-wide iterator TA consumes is a
//! k-way merge over the term's per-sid block streams, reproducing the seed
//! layout's `(term, inv_score, sid, doc, end)` key order exactly while
//! decoding blocks lazily and skipping ones whose header proves them
//! irrelevant.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use trex_obs::IndexCounters;
use trex_storage::codec::inverted_score_bits;
use trex_storage::{Result, StorageError, Store, Table};
use trex_summary::Sid;
use trex_text::TermId;

use crate::blocks::{
    block_key, decode_rpl_block, encode_rpl_list, normalize_rpl, peek_rpl_header, BlockLimits,
};
use crate::encode::{ElementRef, RplEntry};
use crate::registry::{ListRegistry, ListStats};

/// Name of the data table inside the store.
pub const RPLS_TABLE: &str = "rpls";
/// Name of the registry table inside the store.
pub const RPLS_REGISTRY_TABLE: &str = "rpls_registry";

/// Write/read access to the `RPLs` table.
pub struct RplTable {
    table: Table,
    registry: ListRegistry,
    obs: Arc<IndexCounters>,
    /// Test-only fault injection: error after this many block inserts.
    fail_after: Option<u32>,
}

impl RplTable {
    /// Opens (creating on first use) the RPL tables of `store`.
    pub fn open(store: &Store) -> Result<RplTable> {
        Ok(RplTable {
            table: store.open_or_create_table(RPLS_TABLE)?,
            registry: ListRegistry::new(store.open_or_create_table(RPLS_REGISTRY_TABLE)?),
            obs: Arc::new(IndexCounters::new()),
            fail_after: None,
        })
    }

    /// Reports decode work into `obs` (shared by every table of an index)
    /// instead of this table's private counter group.
    pub fn with_counters(mut self, obs: Arc<IndexCounters>) -> RplTable {
        self.obs = obs;
        self
    }

    /// Makes the `n`-th next block insert fail — exercises the write path's
    /// failure atomicity in regression tests.
    #[doc(hidden)]
    pub fn fail_after_inserts(&mut self, n: u32) {
        self.fail_after = Some(n);
    }

    /// Materialises the complete relevance list of `(term, sid)`:
    /// every element of the sid's extent containing the term, with its score.
    /// Replaces an existing list for the same pair.
    ///
    /// The write is failure-atomic: the registry record is stamped *before*
    /// the block inserts, so every block on disk is owned by a registry
    /// record at all times (a crash mid-list is repaired by the next
    /// `put_list`/`drop_list` for the pair); if an insert fails, the landed
    /// blocks are rolled back best-effort and the stamp removed, leaving the
    /// pair unmaterialised rather than half-written.
    pub fn put_list(
        &mut self,
        term: TermId,
        sid: Sid,
        entries: &[(ElementRef, f32)],
    ) -> Result<()> {
        debug_assert!(entries
            .iter()
            .all(|&(_, score)| score.is_finite() && score >= 0.0));
        if self.registry.contains(term, sid)? {
            self.drop_list(term, sid)?;
        }
        let normalized = normalize_rpl(entries);
        let encoded = encode_rpl_list(&normalized, BlockLimits::default());
        let stats = ListStats {
            entries: normalized.len() as u64,
            bytes: encoded.iter().map(|b| (12 + b.len()) as u64).sum(),
            blocks: encoded.len() as u64,
        };
        self.registry.put(term, sid, stats)?;
        for (no, value) in encoded.iter().enumerate() {
            if let Err(e) = self.insert_block(term, sid, no as u32, value) {
                for undo in 0..=no as u32 {
                    let _ = self.table.delete(&block_key(term, sid, undo));
                }
                let _ = self.registry.remove(term, sid);
                return Err(e);
            }
        }
        Ok(())
    }

    fn insert_block(&mut self, term: TermId, sid: Sid, no: u32, value: &[u8]) -> Result<()> {
        if let Some(left) = self.fail_after.as_mut() {
            if *left == 0 {
                return Err(StorageError::Corrupt(
                    "injected block insert failure".into(),
                ));
            }
            *left -= 1;
        }
        self.table.insert(&block_key(term, sid, no), value)
    }

    /// Whether the list for `(term, sid)` is materialised.
    pub fn has_list(&self, term: TermId, sid: Sid) -> Result<bool> {
        self.registry.contains(term, sid)
    }

    /// Size bookkeeping for `(term, sid)`.
    pub fn list_stats(&self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        self.registry.get(term, sid)
    }

    /// Drops the materialised list of `(term, sid)`: `blocks` point deletes
    /// against the dense block keys — no term-wide scan.
    pub fn drop_list(&mut self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        let Some(stats) = self.registry.remove(term, sid)? else {
            return Ok(None);
        };
        for no in 0..stats.blocks {
            self.table.delete(&block_key(term, sid, no as u32))?;
        }
        Ok(Some(stats))
    }

    /// Iterator over all RPL entries of `term` in descending score order —
    /// TA's sorted access. Entries of sids outside the query are yielded too;
    /// TA skips them (paper §3.3).
    pub fn iter_term(&self, term: TermId) -> Result<RplIter<'_>> {
        let streams = self
            .registry
            .sids_of(term)?
            .into_iter()
            .map(|(sid, stats)| RplStream {
                sid,
                blocks: stats.blocks,
                next_block: 0,
                entries: Vec::new(),
                pos: 0,
            })
            .collect();
        let mut it = RplIter {
            table: &self.table,
            obs: self.obs.clone(),
            term,
            streams,
            heap: BinaryHeap::new(),
        };
        for idx in 0..it.streams.len() {
            it.push_head(idx)?;
        }
        Ok(it)
    }

    /// Total bytes across every materialised RPL — used-space accounting.
    pub fn total_bytes(&self) -> Result<u64> {
        self.registry.total_bytes()
    }

    /// Every materialised (term, sid) pair with its stats.
    pub fn lists(&self) -> Result<Vec<(TermId, Sid, ListStats)>> {
        self.registry.all()
    }
}

/// The merge key of one stream head: `(inv_score, sid, doc, end)` plus the
/// stream index, matching the seed layout's key order.
type HeadKey = (u32, Sid, u32, u32, usize);

/// One sid's lazily decoded block stream.
struct RplStream {
    sid: Sid,
    blocks: u64,
    next_block: u64,
    entries: Vec<RplEntry>,
    pos: usize,
}

/// Descending-score iterator over one term's RPL entries: a k-way merge of
/// the term's per-sid block streams on `(inv_score, sid, doc, end)` — the
/// seed layout's exact key order.
pub struct RplIter<'a> {
    table: &'a Table,
    obs: Arc<IndexCounters>,
    term: TermId,
    streams: Vec<RplStream>,
    /// Min-heap of each stream's current head.
    heap: BinaryHeap<Reverse<HeadKey>>,
}

impl RplIter<'_> {
    /// The next entry, or `None` when this term's entries are exhausted.
    pub fn next_entry(&mut self) -> Result<Option<RplEntry>> {
        let Some(Reverse((_, _, _, _, idx))) = self.heap.pop() else {
            return Ok(None);
        };
        let stream = &mut self.streams[idx];
        let entry = stream.entries[stream.pos];
        stream.pos += 1;
        self.push_head(idx)?;
        self.obs.rpl_entries.incr();
        Ok(Some(entry))
    }

    /// Positions the iterator at the first entry (in merged order) whose
    /// score is `<= score`, skipping whole blocks via their headers without
    /// decoding them. Only moves forward; seeking backwards is a no-op for
    /// already-passed entries. Sorted access from the new position is
    /// byte-identical to a full scan that discarded the higher-scoring
    /// prefix.
    pub fn seek_score_at_most(&mut self, score: f32) -> Result<()> {
        let target = inverted_score_bits(score);
        self.heap.clear();
        for idx in 0..self.streams.len() {
            self.seek_stream(idx, target)?;
            self.push_head(idx)?;
        }
        Ok(())
    }

    fn seek_stream(&mut self, idx: usize, target: u32) -> Result<()> {
        loop {
            {
                let stream = &mut self.streams[idx];
                // Advance within the decoded block: entries with inv < target
                // score strictly above the bound.
                while stream.pos < stream.entries.len()
                    && inverted_score_bits(stream.entries[stream.pos].score) < target
                {
                    stream.pos += 1;
                }
                if stream.pos < stream.entries.len() || stream.next_block >= stream.blocks {
                    return Ok(());
                }
            }
            // Peek the next block's header: if even its lowest-scoring entry
            // beats the bound, skip the whole block undecoded.
            let (sid, no) = {
                let s = &self.streams[idx];
                (s.sid, s.next_block as u32)
            };
            let value = self.fetch_block_value(sid, no)?;
            let decoded = if peek_rpl_header(&value)?.last_inv < target {
                Vec::new()
            } else {
                decode_rpl_block(self.term, sid, &value)?
            };
            let stream = &mut self.streams[idx];
            stream.next_block += 1;
            stream.entries = decoded;
            stream.pos = 0;
        }
    }

    /// Refills `stream`'s head (decoding the next block if needed) and
    /// pushes it onto the merge heap.
    fn push_head(&mut self, idx: usize) -> Result<()> {
        loop {
            let stream = &self.streams[idx];
            if stream.pos < stream.entries.len() {
                let e = stream.entries[stream.pos];
                self.heap.push(Reverse((
                    inverted_score_bits(e.score),
                    e.sid,
                    e.element.doc,
                    e.element.end,
                    idx,
                )));
                return Ok(());
            }
            if stream.next_block >= stream.blocks {
                return Ok(());
            }
            let (sid, no) = (stream.sid, stream.next_block as u32);
            let value = self.fetch_block_value(sid, no)?;
            let entries = decode_rpl_block(self.term, sid, &value)?;
            let stream = &mut self.streams[idx];
            stream.entries = entries;
            stream.pos = 0;
            stream.next_block += 1;
        }
    }

    fn fetch_block_value(&self, sid: Sid, no: u32) -> Result<Vec<u8>> {
        let key = block_key(self.term, sid, no);
        let value = self.table.get(&key)?.ok_or_else(|| {
            StorageError::Corrupt(format!(
                "missing RPL block {no} of term {} sid {sid}",
                self.term
            ))
        })?;
        self.obs.rpl_blocks.incr();
        self.obs.rpl_bytes.add((key.len() + value.len()) as u64);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_rpls<R>(name: &str, f: impl FnOnce(&mut RplTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-rpl-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t = RplTable::open(&store).unwrap();
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn el(doc: u32, end: u32, length: u32) -> ElementRef {
        ElementRef { doc, end, length }
    }

    fn drain(it: &mut RplIter<'_>) -> Vec<RplEntry> {
        let mut out = Vec::new();
        while let Some(e) = it.next_entry().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn iteration_is_descending_by_score() {
        with_rpls("desc", |t| {
            t.put_list(
                1,
                10,
                &[(el(0, 5, 2), 0.5), (el(0, 9, 3), 2.5), (el(1, 4, 1), 1.0)],
            )
            .unwrap();
            let mut it = t.iter_term(1).unwrap();
            let scores: Vec<f32> = drain(&mut it).iter().map(|e| e.score).collect();
            assert_eq!(scores, vec![2.5, 1.0, 0.5]);
        });
    }

    #[test]
    fn multiple_sids_interleave_by_score() {
        with_rpls("multi", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 3.0), (el(0, 9, 3), 1.0)])
                .unwrap();
            t.put_list(1, 20, &[(el(1, 5, 2), 2.0)]).unwrap();
            let mut it = t.iter_term(1).unwrap();
            let got: Vec<(Sid, f32)> = drain(&mut it).iter().map(|e| (e.sid, e.score)).collect();
            assert_eq!(got, vec![(10, 3.0), (20, 2.0), (10, 1.0)]);
        });
    }

    #[test]
    fn registry_tracks_materialisation() {
        with_rpls("registry", |t| {
            assert!(!t.has_list(1, 10).unwrap());
            t.put_list(1, 10, &[(el(0, 5, 2), 1.0)]).unwrap();
            assert!(t.has_list(1, 10).unwrap());
            let stats = t.list_stats(1, 10).unwrap().unwrap();
            assert_eq!(stats.entries, 1);
            assert_eq!(stats.blocks, 1);
            assert!(stats.bytes > 0);
            assert_eq!(t.total_bytes().unwrap(), stats.bytes);
        });
    }

    #[test]
    fn drop_list_removes_only_that_sid() {
        with_rpls("drop", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 3.0)]).unwrap();
            t.put_list(1, 20, &[(el(1, 5, 2), 2.0)]).unwrap();
            t.drop_list(1, 10).unwrap().unwrap();
            assert!(!t.has_list(1, 10).unwrap());
            assert!(t.has_list(1, 20).unwrap());
            let mut it = t.iter_term(1).unwrap();
            let e = it.next_entry().unwrap().unwrap();
            assert_eq!(e.sid, 20);
            assert!(it.next_entry().unwrap().is_none());
        });
    }

    #[test]
    fn put_list_replaces_existing() {
        with_rpls("replace", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 3.0), (el(0, 9, 1), 1.0)])
                .unwrap();
            t.put_list(1, 10, &[(el(0, 5, 2), 4.0)]).unwrap();
            let mut it = t.iter_term(1).unwrap();
            let e = it.next_entry().unwrap().unwrap();
            assert_eq!(e.score, 4.0);
            assert!(it.next_entry().unwrap().is_none());
            assert_eq!(t.list_stats(1, 10).unwrap().unwrap().entries, 1);
        });
    }

    #[test]
    fn equal_scores_are_all_retained() {
        with_rpls("ties", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 1.5), (el(0, 9, 3), 1.5)])
                .unwrap();
            let mut it = t.iter_term(1).unwrap();
            assert_eq!(drain(&mut it).len(), 2);
        });
    }

    #[test]
    fn long_lists_split_into_multiple_blocks_and_round_trip() {
        with_rpls("split", |t| {
            let entries: Vec<(ElementRef, f32)> = (0..1000)
                .map(|i| (el(i / 100, (i % 100) * 3 + 2, 3), (i % 37) as f32 * 0.25))
                .collect();
            t.put_list(1, 10, &entries).unwrap();
            let stats = t.list_stats(1, 10).unwrap().unwrap();
            assert_eq!(stats.entries, 1000);
            assert!(stats.blocks >= 1000 / 128, "blocks {}", stats.blocks);
            let mut it = t.iter_term(1).unwrap();
            let got = drain(&mut it);
            assert_eq!(got.len(), 1000);
            assert!(got.windows(2).all(|w| w[0].score >= w[1].score));
            // Dropping deletes every block.
            t.drop_list(1, 10).unwrap().unwrap();
            assert_eq!(t.total_bytes().unwrap(), 0);
            let mut it = t.iter_term(1).unwrap();
            assert!(it.next_entry().unwrap().is_none());
        });
    }

    #[test]
    fn seek_score_at_most_matches_full_scan() {
        with_rpls("seek", |t| {
            let entries: Vec<(ElementRef, f32)> = (0..600)
                .map(|i| (el(i / 60, (i % 60) * 2 + 1, 2), (i % 50) as f32 * 0.5))
                .collect();
            t.put_list(1, 10, &entries).unwrap();
            t.put_list(1, 20, &entries[..300]).unwrap();
            for bound in [24.5f32, 10.0, 3.25, 0.0, 100.0] {
                let mut scan = t.iter_term(1).unwrap();
                let expected: Vec<RplEntry> = drain(&mut scan)
                    .into_iter()
                    .filter(|e| e.score <= bound)
                    .collect();
                let mut seeked = t.iter_term(1).unwrap();
                seeked.seek_score_at_most(bound).unwrap();
                let got = drain(&mut seeked);
                assert_eq!(got, expected, "bound {bound}");
            }
        });
    }

    #[test]
    fn failed_put_list_leaves_no_orphans() {
        with_rpls("atomic", |t| {
            let entries: Vec<(ElementRef, f32)> =
                (0..600).map(|i| (el(0, i * 2 + 1, 2), i as f32)).collect();
            t.fail_after_inserts(2);
            let err = t.put_list(1, 10, &entries);
            assert!(err.is_err());
            t.fail_after = None;
            // No registry record, no readable entries, no counted bytes.
            assert!(!t.has_list(1, 10).unwrap());
            assert_eq!(t.total_bytes().unwrap(), 0);
            let mut it = t.iter_term(1).unwrap();
            assert!(it.next_entry().unwrap().is_none());
            // And the pair is writable again afterwards.
            t.put_list(1, 10, &entries).unwrap();
            let mut it = t.iter_term(1).unwrap();
            assert_eq!(drain(&mut it).len(), 600);
        });
    }
}
