//! The `RPLs` table: relevance posting lists in descending score order
//! (paper §2.2), with per-(term, sid) materialisation tracking.

use std::sync::Arc;

use trex_obs::IndexCounters;
use trex_storage::codec::put_u32;
use trex_storage::{Result, Store, Table};
use trex_summary::Sid;
use trex_text::TermId;

use crate::encode::{decode_rpl, elements_value, rpl_key, ElementRef, RplEntry};
use crate::registry::{ListRegistry, ListStats};

/// Name of the data table inside the store.
pub const RPLS_TABLE: &str = "rpls";
/// Name of the registry table inside the store.
pub const RPLS_REGISTRY_TABLE: &str = "rpls_registry";

/// Write/read access to the `RPLs` table.
pub struct RplTable {
    table: Table,
    registry: ListRegistry,
    obs: Arc<IndexCounters>,
}

impl RplTable {
    /// Opens (creating on first use) the RPL tables of `store`.
    pub fn open(store: &Store) -> Result<RplTable> {
        Ok(RplTable {
            table: store.open_or_create_table(RPLS_TABLE)?,
            registry: ListRegistry::new(store.open_or_create_table(RPLS_REGISTRY_TABLE)?),
            obs: Arc::new(IndexCounters::new()),
        })
    }

    /// Reports decode work into `obs` (shared by every table of an index)
    /// instead of this table's private counter group.
    pub fn with_counters(mut self, obs: Arc<IndexCounters>) -> RplTable {
        self.obs = obs;
        self
    }

    /// Materialises the complete relevance list of `(term, sid)`:
    /// every element of the sid's extent containing the term, with its score.
    /// Replaces an existing list for the same pair.
    pub fn put_list(
        &mut self,
        term: TermId,
        sid: Sid,
        entries: &[(ElementRef, f32)],
    ) -> Result<()> {
        if self.registry.contains(term, sid)? {
            self.drop_list(term, sid)?;
        }
        let mut bytes = 0u64;
        for &(element, score) in entries {
            debug_assert!(score.is_finite() && score >= 0.0);
            let key = rpl_key(term, score, sid, element);
            let value = elements_value(element.length);
            bytes += (key.len() + value.len()) as u64;
            self.table.insert(&key, &value)?;
        }
        self.registry.put(
            term,
            sid,
            ListStats {
                entries: entries.len() as u64,
                bytes,
            },
        )
    }

    /// Whether the list for `(term, sid)` is materialised.
    pub fn has_list(&self, term: TermId, sid: Sid) -> Result<bool> {
        self.registry.contains(term, sid)
    }

    /// Size bookkeeping for `(term, sid)`.
    pub fn list_stats(&self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        self.registry.get(term, sid)
    }

    /// Drops the materialised list of `(term, sid)`, freeing its entries.
    pub fn drop_list(&mut self, term: TermId, sid: Sid) -> Result<Option<ListStats>> {
        let Some(stats) = self.registry.remove(term, sid)? else {
            return Ok(None);
        };
        // Collect the doomed keys first (cursors are invalidated by writes).
        let mut doomed = Vec::new();
        let mut cursor = self.term_cursor(term)?;
        while let Some((key, value)) = cursor.next_entry()? {
            let entry = decode_rpl(&key, &value)?;
            if entry.term != term {
                break;
            }
            if entry.sid == sid {
                doomed.push(key);
            }
        }
        for key in doomed {
            self.table.delete(&key)?;
        }
        Ok(Some(stats))
    }

    /// Iterator over all RPL entries of `term` in descending score order —
    /// TA's sorted access. Entries of sids outside the query are yielded too;
    /// TA skips them (paper §3.3).
    pub fn iter_term(&self, term: TermId) -> Result<RplIter> {
        Ok(RplIter {
            cursor: self.term_cursor(term)?,
            term,
            obs: self.obs.clone(),
        })
    }

    /// Total bytes across every materialised RPL — used-space accounting.
    pub fn total_bytes(&self) -> Result<u64> {
        self.registry.total_bytes()
    }

    /// Every materialised (term, sid) pair with its stats.
    pub fn lists(&self) -> Result<Vec<(TermId, Sid, ListStats)>> {
        self.registry.all()
    }

    fn term_cursor(&self, term: TermId) -> Result<trex_storage::Cursor> {
        let mut prefix = Vec::with_capacity(4);
        put_u32(&mut prefix, term);
        self.table.seek(&prefix)
    }
}

/// Descending-score iterator over one term's RPL entries.
pub struct RplIter {
    cursor: trex_storage::Cursor,
    term: TermId,
    obs: Arc<IndexCounters>,
}

impl RplIter {
    /// The next entry, or `None` when this term's entries are exhausted.
    pub fn next_entry(&mut self) -> Result<Option<RplEntry>> {
        match self.cursor.next_entry()? {
            Some((key, value)) => {
                let entry = decode_rpl(&key, &value)?;
                if entry.term != self.term {
                    return Ok(None);
                }
                self.obs.rpl_entries.incr();
                self.obs.rpl_bytes.add((key.len() + value.len()) as u64);
                Ok(Some(entry))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_rpls<R>(name: &str, f: impl FnOnce(&mut RplTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-rpl-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t = RplTable::open(&store).unwrap();
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn el(doc: u32, end: u32, length: u32) -> ElementRef {
        ElementRef { doc, end, length }
    }

    #[test]
    fn iteration_is_descending_by_score() {
        with_rpls("desc", |t| {
            t.put_list(
                1,
                10,
                &[(el(0, 5, 2), 0.5), (el(0, 9, 3), 2.5), (el(1, 4, 1), 1.0)],
            )
            .unwrap();
            let mut it = t.iter_term(1).unwrap();
            let mut scores = Vec::new();
            while let Some(e) = it.next_entry().unwrap() {
                scores.push(e.score);
            }
            assert_eq!(scores, vec![2.5, 1.0, 0.5]);
        });
    }

    #[test]
    fn multiple_sids_interleave_by_score() {
        with_rpls("multi", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 3.0), (el(0, 9, 3), 1.0)])
                .unwrap();
            t.put_list(1, 20, &[(el(1, 5, 2), 2.0)]).unwrap();
            let mut it = t.iter_term(1).unwrap();
            let mut got = Vec::new();
            while let Some(e) = it.next_entry().unwrap() {
                got.push((e.sid, e.score));
            }
            assert_eq!(got, vec![(10, 3.0), (20, 2.0), (10, 1.0)]);
        });
    }

    #[test]
    fn registry_tracks_materialisation() {
        with_rpls("registry", |t| {
            assert!(!t.has_list(1, 10).unwrap());
            t.put_list(1, 10, &[(el(0, 5, 2), 1.0)]).unwrap();
            assert!(t.has_list(1, 10).unwrap());
            let stats = t.list_stats(1, 10).unwrap().unwrap();
            assert_eq!(stats.entries, 1);
            assert!(stats.bytes > 0);
            assert_eq!(t.total_bytes().unwrap(), stats.bytes);
        });
    }

    #[test]
    fn drop_list_removes_only_that_sid() {
        with_rpls("drop", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 3.0)]).unwrap();
            t.put_list(1, 20, &[(el(1, 5, 2), 2.0)]).unwrap();
            t.drop_list(1, 10).unwrap().unwrap();
            assert!(!t.has_list(1, 10).unwrap());
            assert!(t.has_list(1, 20).unwrap());
            let mut it = t.iter_term(1).unwrap();
            let e = it.next_entry().unwrap().unwrap();
            assert_eq!(e.sid, 20);
            assert!(it.next_entry().unwrap().is_none());
        });
    }

    #[test]
    fn put_list_replaces_existing() {
        with_rpls("replace", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 3.0), (el(0, 9, 1), 1.0)])
                .unwrap();
            t.put_list(1, 10, &[(el(0, 5, 2), 4.0)]).unwrap();
            let mut it = t.iter_term(1).unwrap();
            let e = it.next_entry().unwrap().unwrap();
            assert_eq!(e.score, 4.0);
            assert!(it.next_entry().unwrap().is_none());
            assert_eq!(t.list_stats(1, 10).unwrap().unwrap().entries, 1);
        });
    }

    #[test]
    fn equal_scores_are_all_retained() {
        with_rpls("ties", |t| {
            t.put_list(1, 10, &[(el(0, 5, 2), 1.5), (el(0, 9, 3), 1.5)])
                .unwrap();
            let mut it = t.iter_term(1).unwrap();
            let mut n = 0;
            while it.next_entry().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, 2);
        });
    }
}
