//! Optional storage of the original documents, enabling snippet retrieval:
//! mapping an answer element back to the XML fragment it denotes.
//!
//! The paper's system returns elements identified by (docid, endpos); a
//! usable retrieval system must be able to show the user the element
//! itself. Documents are stored as chunked blobs in their own table.

use trex_storage::{Result, Store, Table};
use trex_text::Analyzer;
use trex_xml::{Document, NodeId, NodeKind};

use crate::catalog::{load_blob, store_blob};
use crate::encode::ElementRef;

/// Name of the document table inside the store.
pub const DOCUMENTS_TABLE: &str = "documents";

/// Write access used by the index builder.
pub struct DocStoreWriter {
    table: Table,
}

impl DocStoreWriter {
    /// Opens (creating on first use) the document table.
    pub fn open(store: &Store) -> Result<DocStoreWriter> {
        Ok(DocStoreWriter {
            table: store.open_or_create_table(DOCUMENTS_TABLE)?,
        })
    }

    /// Stores the raw XML of document `doc_id`.
    pub fn put(&mut self, doc_id: u32, xml: &str) -> Result<()> {
        store_blob(&mut self.table, &doc_id.to_string(), xml.as_bytes())
    }
}

/// Read access: fetch documents and cut element snippets.
pub struct DocStore {
    table: Table,
}

impl DocStore {
    /// Opens the document table; errors if the index was built without
    /// document storage.
    pub fn open(store: &Store) -> Result<DocStore> {
        Ok(DocStore {
            table: store.open_table(DOCUMENTS_TABLE)?,
        })
    }

    /// The raw XML of document `doc_id`, if stored.
    pub fn document(&self, doc_id: u32) -> Result<Option<String>> {
        Ok(load_blob(&self.table, &doc_id.to_string())?
            .map(|bytes| String::from_utf8_lossy(&bytes).into_owned()))
    }

    /// Serialises the element `element` of its document back to XML, by
    /// re-walking the document with the index's analyzer and locating the
    /// element whose token span matches. Returns `None` when the document
    /// is not stored or no element matches (e.g. a stale answer).
    pub fn snippet(&self, element: ElementRef, analyzer: &Analyzer) -> Result<Option<String>> {
        let Some(xml) = self.document(element.doc)? else {
            return Ok(None);
        };
        let doc = match Document::parse(&xml) {
            Ok(d) => d,
            Err(_) => return Ok(None), // stored bytes no longer parse
        };
        let mut next_pos = 0u32;
        let found = locate(&doc, doc.root(), analyzer, &mut next_pos, element);
        Ok(found.map(|id| {
            let mut out = String::new();
            write_subtree(&doc, id, &mut out);
            out
        }))
    }
}

/// Walks the document mirroring the index builder's position assignment;
/// returns the node whose span equals `want`.
fn locate(
    doc: &Document,
    node: NodeId,
    analyzer: &Analyzer,
    next_pos: &mut u32,
    want: ElementRef,
) -> Option<NodeId> {
    match &doc.node(node).kind {
        NodeKind::Text(text) => {
            let (_, np) = analyzer.analyze_from(text, *next_pos);
            *next_pos = np;
            None
        }
        NodeKind::Element { .. } => {
            let mark = *next_pos;
            let mut found = None;
            for &child in &doc.node(node).children {
                if let Some(hit) = locate(doc, child, analyzer, next_pos, want) {
                    found = Some(hit);
                }
            }
            let length = *next_pos - mark;
            if found.is_some() {
                return found;
            }
            if length == want.length && length > 0 && *next_pos - 1 == want.end {
                return Some(node);
            }
            None
        }
    }
}

fn write_subtree(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Text(t) => out.push_str(&trex_xml::escape::escape_text(t)),
        NodeKind::Element { name, .. } => {
            out.push('<');
            out.push_str(name);
            out.push('>');
            for &c in &doc.node(id).children {
                write_subtree(doc, c, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_store<R>(name: &str, f: impl FnOnce(&Store) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-docstore-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let r = f(&store);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    #[test]
    fn documents_round_trip_including_large_ones() {
        with_store("rt", |store| {
            let mut w = DocStoreWriter::open(store).unwrap();
            let small = "<a>tiny</a>".to_string();
            let large = format!("<a>{}</a>", "word ".repeat(5000));
            w.put(0, &small).unwrap();
            w.put(1, &large).unwrap();
            let r = DocStore::open(store).unwrap();
            assert_eq!(r.document(0).unwrap().unwrap(), small);
            assert_eq!(r.document(1).unwrap().unwrap(), large);
            assert!(r.document(7).unwrap().is_none());
        });
    }

    #[test]
    fn snippet_locates_the_right_element() {
        with_store("snippet", |store| {
            let mut w = DocStoreWriter::open(store).unwrap();
            let xml = "<article><sec>alpha beta</sec><sec>gamma delta epsilon</sec></article>";
            w.put(0, xml).unwrap();
            let r = DocStore::open(store).unwrap();
            let analyzer = Analyzer::verbatim();
            // Second sec spans tokens [2, 4], length 3.
            let snippet = r
                .snippet(
                    ElementRef {
                        doc: 0,
                        end: 4,
                        length: 3,
                    },
                    &analyzer,
                )
                .unwrap()
                .unwrap();
            assert_eq!(snippet, "<sec>gamma delta epsilon</sec>");
            // The whole article spans [0, 4], length 5.
            let snippet = r
                .snippet(
                    ElementRef {
                        doc: 0,
                        end: 4,
                        length: 5,
                    },
                    &analyzer,
                )
                .unwrap()
                .unwrap();
            assert!(snippet.starts_with("<article>"));
        });
    }

    #[test]
    fn snippet_of_unknown_span_is_none() {
        with_store("unknown", |store| {
            let mut w = DocStoreWriter::open(store).unwrap();
            w.put(0, "<a>one two</a>").unwrap();
            let r = DocStore::open(store).unwrap();
            let analyzer = Analyzer::verbatim();
            assert!(r
                .snippet(
                    ElementRef {
                        doc: 0,
                        end: 9,
                        length: 3
                    },
                    &analyzer
                )
                .unwrap()
                .is_none());
            assert!(r
                .snippet(
                    ElementRef {
                        doc: 5,
                        end: 1,
                        length: 1
                    },
                    &analyzer
                )
                .unwrap()
                .is_none());
        });
    }
}
