//! The `PostingLists` table: chunked inverted lists with the `m-pos`
//! sentinel, plus the per-term position iterator (`I_t` of paper §3.2).

use std::sync::Arc;

use trex_obs::IndexCounters;
use trex_storage::{Result, Table};
use trex_text::TermId;

use crate::encode::{
    decode_postings_key, decode_postings_value, postings_key, postings_value, Position,
};

/// Name of the table inside the store.
pub const POSTINGS_TABLE: &str = "postings";

/// Default number of positions per stored chunk. "Since the posting list
/// might be too long for storing it in a single tuple, it is divided and
/// stored in several tuples whenever needed" (§2.2).
pub const DEFAULT_CHUNK_SIZE: usize = 256;

/// Write/read access to the `PostingLists` table.
pub struct PostingsTable {
    table: Table,
    chunk_size: usize,
    obs: Arc<IndexCounters>,
}

impl PostingsTable {
    /// Wraps an open storage table with the default chunk size.
    pub fn new(table: Table) -> PostingsTable {
        PostingsTable::with_chunk_size(table, DEFAULT_CHUNK_SIZE)
    }

    /// Wraps with an explicit chunk size (exposed for the chunk-size
    /// ablation benchmark).
    pub fn with_chunk_size(table: Table, chunk_size: usize) -> PostingsTable {
        PostingsTable {
            table,
            chunk_size: chunk_size.max(2),
            obs: Arc::new(IndexCounters::new()),
        }
    }

    /// Reports decode work into `obs` (shared by every table of an index)
    /// instead of this table's private counter group.
    pub fn with_counters(mut self, obs: Arc<IndexCounters>) -> PostingsTable {
        self.obs = obs;
        self
    }

    /// Writes the complete posting list of `term`. `positions` must be
    /// sorted ascending and duplicate-free; the `m-pos` sentinel is appended
    /// to the final chunk automatically.
    ///
    /// Chunks are bounded both by the configured position count and by the
    /// storage engine's value size: a chunk is flushed early if its
    /// delta-encoding would no longer fit in one tuple.
    pub fn put_term(&mut self, term: TermId, positions: &[Position]) -> Result<()> {
        for (key, value) in chunk_entries(term, positions, self.chunk_size) {
            self.table.insert(&key, &value)?;
        }
        Ok(())
    }

    /// Iterator over the positions of `term` — the paper's `I_t`. Yields
    /// every stored position including the trailing `m-pos`, and keeps
    /// returning `m-pos` once exhausted.
    pub fn positions(&self, term: TermId) -> Result<PositionIter> {
        let cursor = self.table.seek(&postings_key(term, Position::MIN))?;
        Ok(PositionIter {
            cursor,
            term,
            buffer: Vec::new(),
            buffer_pos: 0,
            done: false,
            obs: self.obs.clone(),
        })
    }

    /// Reads the complete stored list of `term`, without the trailing
    /// `m-pos` sentinel. Used by the delta fold to merge staged positions
    /// into the on-disk list.
    pub fn all_positions(&self, term: TermId) -> Result<Vec<Position>> {
        let mut out = Vec::new();
        let mut it = self.positions(term)?;
        loop {
            let p = it.next_position()?;
            if p.is_max() {
                return Ok(out);
            }
            out.push(p);
        }
    }

    /// Replaces the stored list of `term` with `positions` (sorted
    /// ascending, duplicate-free): deletes the existing chunk tuples, then
    /// rewrites the list. The delta fold uses this to append ingested
    /// documents' positions, which sort strictly after every on-disk
    /// position because delta doc ids are allocated above the built range.
    pub fn replace_term(&mut self, term: TermId, positions: &[Position]) -> Result<()> {
        let mut stale = Vec::new();
        let mut cursor = self.table.seek(&postings_key(term, Position::MIN))?;
        while let Some((key, _)) = cursor.next_entry()? {
            let (t, _) = decode_postings_key(&key)?;
            if t != term {
                break;
            }
            stale.push(key);
        }
        drop(cursor);
        for key in stale {
            self.table.delete(&key)?;
        }
        self.put_term(term, positions)
    }

    /// Number of chunk tuples stored for `term` (ablation statistics).
    pub fn chunk_count(&self, term: TermId) -> Result<usize> {
        let mut cursor = self.table.seek(&postings_key(term, Position::MIN))?;
        let mut n = 0;
        while let Some((key, _)) = cursor.next_entry()? {
            let (t, _) = decode_postings_key(&key)?;
            if t != term {
                break;
            }
            n += 1;
        }
        Ok(n)
    }
}

/// Encodes one term's posting list into its chunked (key, value) tuples,
/// appending the `m-pos` sentinel. `positions` must be strictly ascending.
/// Chunks are bounded both by `chunk_size` and by the storage value limit.
/// Exposed so the index builder can feed all terms' chunks, in key order,
/// straight into a B+tree bulk load.
pub fn chunk_entries(
    term: TermId,
    positions: &[Position],
    chunk_size: usize,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    debug_assert!(positions.windows(2).all(|w| w[0] < w[1]), "sorted input");
    // Worst-case encoded bytes per position: two 5-byte varints.
    const WORST_PER_POSITION: usize = 10;
    let byte_cap = (trex_storage::MAX_VALUE_LEN / WORST_PER_POSITION).max(2);
    let effective = chunk_size.max(2).min(byte_cap);

    let mut out = Vec::with_capacity(positions.len() / effective + 1);
    let mut chunk: Vec<Position> = Vec::with_capacity(effective);
    for &p in positions.iter().chain(std::iter::once(&Position::MAX)) {
        chunk.push(p);
        if chunk.len() >= effective {
            out.push((postings_key(term, chunk[0]), postings_value(&chunk)));
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        out.push((postings_key(term, chunk[0]), postings_value(&chunk)));
    }
    out
}

/// Streaming iterator over one term's positions.
pub struct PositionIter {
    cursor: trex_storage::Cursor,
    term: TermId,
    buffer: Vec<Position>,
    buffer_pos: usize,
    done: bool,
    obs: Arc<IndexCounters>,
}

impl PositionIter {
    /// The paper's `I_t.nextPosition()`: the next position, or `m-pos`
    /// forever after the list ends.
    pub fn next_position(&mut self) -> Result<Position> {
        loop {
            if self.buffer_pos < self.buffer.len() {
                let p = self.buffer[self.buffer_pos];
                self.buffer_pos += 1;
                if p.is_max() {
                    // The stored end-of-list terminator is not a posting:
                    // counting it would add one phantom entry per list per
                    // store, breaking the exact additivity of
                    // `posting_entries` across partitioned stores.
                    self.done = true;
                } else {
                    self.obs.posting_entries.incr();
                }
                return Ok(p);
            }
            if self.done {
                return Ok(Position::MAX);
            }
            match self.cursor.next_entry()? {
                Some((key, value)) => {
                    let (term, first) = decode_postings_key(&key)?;
                    if term != self.term {
                        self.done = true;
                        return Ok(Position::MAX);
                    }
                    self.obs.posting_bytes.add((key.len() + value.len()) as u64);
                    self.buffer = decode_postings_value(first, &value)?;
                    self.buffer_pos = 0;
                }
                None => {
                    self.done = true;
                    return Ok(Position::MAX);
                }
            }
        }
    }

    /// Skips forward to the first position `>= target` (used by skip-ahead
    /// optimisations; semantics match repeatedly calling `next_position`).
    pub fn seek_position(&mut self, target: Position) -> Result<Position> {
        loop {
            let p = self.next_position()?;
            if p >= target {
                return Ok(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_storage::Store;

    fn with_table<R>(name: &str, chunk: usize, f: impl FnOnce(&mut PostingsTable) -> R) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("trex-postings-{name}-{}", std::process::id()));
        let store = Store::create(&path, 64).unwrap();
        let mut t =
            PostingsTable::with_chunk_size(store.create_table(POSTINGS_TABLE).unwrap(), chunk);
        let r = f(&mut t);
        drop(t);
        drop(store);
        std::fs::remove_file(&path).ok();
        r
    }

    fn pos(doc: u32, offset: u32) -> Position {
        Position { doc, offset }
    }

    #[test]
    fn positions_round_trip_with_m_pos() {
        with_table("rt", 4, |t| {
            let positions = vec![pos(0, 1), pos(0, 7), pos(1, 2), pos(3, 0), pos(3, 1)];
            t.put_term(5, &positions).unwrap();
            let mut it = t.positions(5).unwrap();
            for &want in &positions {
                assert_eq!(it.next_position().unwrap(), want);
            }
            assert!(it.next_position().unwrap().is_max(), "stored m-pos");
            assert!(it.next_position().unwrap().is_max(), "m-pos repeats");
        });
    }

    #[test]
    fn chunking_splits_long_lists() {
        with_table("chunks", 4, |t| {
            let positions: Vec<Position> = (0..10).map(|i| pos(0, i * 3)).collect();
            t.put_term(1, &positions).unwrap();
            // 10 positions + m-pos = 11 → 3 chunks of ≤4.
            assert_eq!(t.chunk_count(1).unwrap(), 3);
            let mut it = t.positions(1).unwrap();
            for &want in &positions {
                assert_eq!(it.next_position().unwrap(), want);
            }
            assert!(it.next_position().unwrap().is_max());
        });
    }

    #[test]
    fn terms_do_not_bleed_into_each_other() {
        with_table("bleed", 4, |t| {
            t.put_term(1, &[pos(0, 1)]).unwrap();
            t.put_term(2, &[pos(0, 2)]).unwrap();
            let mut it = t.positions(1).unwrap();
            assert_eq!(it.next_position().unwrap(), pos(0, 1));
            assert!(it.next_position().unwrap().is_max());
            assert!(it.next_position().unwrap().is_max());
        });
    }

    #[test]
    fn missing_term_yields_m_pos_immediately() {
        with_table("missing", 4, |t| {
            t.put_term(7, &[pos(0, 1)]).unwrap();
            let mut it = t.positions(3).unwrap();
            assert!(it.next_position().unwrap().is_max());
        });
    }

    #[test]
    fn empty_posting_list_stores_only_m_pos() {
        with_table("emptylist", 4, |t| {
            t.put_term(9, &[]).unwrap();
            let mut it = t.positions(9).unwrap();
            assert!(it.next_position().unwrap().is_max());
            assert_eq!(t.chunk_count(9).unwrap(), 1);
        });
    }

    #[test]
    fn seek_position_lands_on_lower_bound() {
        with_table("seekpos", 3, |t| {
            let positions: Vec<Position> = (0..20).map(|i| pos(i / 5, (i % 5) * 4)).collect();
            let mut sorted = positions.clone();
            sorted.sort();
            t.put_term(2, &sorted).unwrap();
            let mut it = t.positions(2).unwrap();
            assert_eq!(it.seek_position(pos(1, 5)).unwrap(), pos(1, 8));
            // (1,8) was consumed by the previous seek; the stream resumes after it.
            assert_eq!(it.seek_position(pos(1, 8)).unwrap(), pos(1, 12));
            assert!(it.seek_position(pos(99, 0)).unwrap().is_max());
        });
    }
}
