//! Key/value encodings of the four TReX tables plus the core identifier
//! types ([`Position`], [`ElementRef`]).
//!
//! Table schemas (paper §2.2), with primary keys underlined there:
//!
//! ```text
//! Elements(SID, docid, endpos, length)
//! PostingLists(token, docid, offset, postingdataentry)
//! RPLs(token, ir, SID, docid, endpos, rpldataentry)
//! ERPLs(token, SID, docid, endpos, ir, erpldataentry)
//! ```
//!
//! Keys are composed with big-endian fields so that memcmp order equals the
//! intended scan order; RPL keys embed the order-inverted score bits so an
//! ascending scan enumerates entries in *descending* relevance.

use trex_storage::codec::{
    get_u32, inverted_score_bits, put_u32, read_varint, read_varint_u32, score_from_inverted_bits,
    write_varint,
};
use trex_storage::{Result, StorageError};
use trex_summary::Sid;
use trex_text::TermId;

/// A token position: (document, token offset). Totally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Document id.
    pub doc: u32,
    /// Token offset within the document.
    pub offset: u32,
}

impl Position {
    /// The paper's `m-pos`: "maximal in the sense that no real position can
    /// exceed it". Appended to the end of every posting list.
    pub const MAX: Position = Position {
        doc: u32::MAX,
        offset: u32::MAX,
    };

    /// The smallest position.
    pub const MIN: Position = Position { doc: 0, offset: 0 };

    /// The immediately following position (saturating at `MAX`).
    pub fn successor(self) -> Position {
        if self.offset == u32::MAX {
            if self.doc == u32::MAX {
                Position::MAX
            } else {
                Position {
                    doc: self.doc + 1,
                    offset: 0,
                }
            }
        } else {
            Position {
                doc: self.doc,
                offset: self.offset + 1,
            }
        }
    }

    /// Whether this is the `m-pos` sentinel.
    pub fn is_max(self) -> bool {
        self == Position::MAX
    }
}

/// Identity of an element: the document and the token position where it ends
/// (paper §2.2: "each element is identified by the position where it ends"),
/// plus its token length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementRef {
    /// Document id.
    pub doc: u32,
    /// Token offset of the element's last contained token.
    pub end: u32,
    /// Number of token positions the element spans (> 0; empty elements are
    /// not indexed — they cannot contain a keyword, so they can never be in
    /// any answer).
    pub length: u32,
}

impl ElementRef {
    /// Token offset of the element's first contained token.
    ///
    /// Written as `end - (length - 1)` with saturating arithmetic: the naive
    /// `end + 1 - length` overflows at `end == u32::MAX`, and a corrupt
    /// `length == 0` or `length > end + 1` must clamp rather than wrap (the
    /// decode paths reject such spans as `Corrupt`, so in-bounds callers
    /// never observe the clamp).
    pub fn start(&self) -> u32 {
        self.end.saturating_sub(self.length.saturating_sub(1))
    }

    /// Whether `(end, length)` describes a representable, non-empty span:
    /// `length >= 1` and `start >= 0`, i.e. `length - 1 <= end`.
    pub fn span_is_valid(&self) -> bool {
        self.length >= 1 && self.length - 1 <= self.end
    }

    /// The position of the element's end, used to order elements.
    pub fn end_position(&self) -> Position {
        Position {
            doc: self.doc,
            offset: self.end,
        }
    }

    /// Whether the element's span contains `pos`.
    pub fn contains(&self, pos: Position) -> bool {
        self.doc == pos.doc
            && self.span_is_valid()
            && self.start() <= pos.offset
            && pos.offset <= self.end
    }
}

/// Checks a decoded span, mapping an empty or overflowing one to `Corrupt`
/// (writers never emit them — `length == 0` cannot contain a keyword, and
/// `length - 1 > end` would start before the document).
pub(crate) fn validate_span(element: ElementRef) -> Result<ElementRef> {
    if element.span_is_valid() {
        Ok(element)
    } else {
        Err(StorageError::Corrupt(format!(
            "invalid element span: end={} length={}",
            element.end, element.length
        )))
    }
}

// ---------------------------------------------------------------------------
// Elements table: key (sid, doc, end) → varint length
// ---------------------------------------------------------------------------

/// Encodes an `Elements` key.
pub fn elements_key(sid: Sid, doc: u32, end: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(12);
    put_u32(&mut k, sid);
    put_u32(&mut k, doc);
    put_u32(&mut k, end);
    k
}

/// Decodes an `Elements` key.
pub fn decode_elements_key(key: &[u8]) -> Result<(Sid, u32, u32)> {
    Ok((get_u32(key, 0)?, get_u32(key, 4)?, get_u32(key, 8)?))
}

/// Encodes an `Elements` value.
pub fn elements_value(length: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(5);
    write_varint(&mut v, length as u64);
    v
}

/// Decodes an `Elements` value.
pub fn decode_elements_value(value: &[u8]) -> Result<u32> {
    let (len, _) = read_varint(value)?;
    Ok(len as u32)
}

// ---------------------------------------------------------------------------
// PostingLists table: key (term, doc, offset) → delta-encoded chunk
// ---------------------------------------------------------------------------

/// Encodes a `PostingLists` key: the term plus the first position of the
/// chunk ("the first position in each fragment is part of the key", §2.2).
pub fn postings_key(term: TermId, first: Position) -> Vec<u8> {
    let mut k = Vec::with_capacity(12);
    put_u32(&mut k, term);
    put_u32(&mut k, first.doc);
    put_u32(&mut k, first.offset);
    k
}

/// Decodes a `PostingLists` key.
pub fn decode_postings_key(key: &[u8]) -> Result<(TermId, Position)> {
    Ok((
        get_u32(key, 0)?,
        Position {
            doc: get_u32(key, 4)?,
            offset: get_u32(key, 8)?,
        },
    ))
}

/// Encodes a chunk of positions (which must be sorted ascending and start
/// with the key's first position) as deltas: `count`, then for each position
/// after the first a `doc_delta` and an offset (absolute when the document
/// changed, a delta otherwise).
pub fn postings_value(positions: &[Position]) -> Vec<u8> {
    let mut v = Vec::new();
    write_varint(&mut v, positions.len() as u64);
    let mut prev: Option<Position> = None;
    for &p in positions {
        match prev {
            None => {} // first position is implicit in the key
            Some(q) => {
                let doc_delta = p.doc - q.doc;
                write_varint(&mut v, doc_delta as u64);
                if doc_delta == 0 {
                    write_varint(&mut v, (p.offset - q.offset) as u64);
                } else {
                    write_varint(&mut v, p.offset as u64);
                }
            }
        }
        prev = Some(p);
    }
    v
}

/// Decodes a chunk given its key's first position.
pub fn decode_postings_value(first: Position, value: &[u8]) -> Result<Vec<Position>> {
    let (count, mut off) = read_varint(value)?;
    let count = count as usize;
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    out.push(first);
    let mut prev = first;
    for _ in 1..count {
        let (doc_delta, n) = read_varint(&value[off..])?;
        off += n;
        let (off_val, n) = read_varint(&value[off..])?;
        off += n;
        let doc_delta = u32::try_from(doc_delta)
            .map_err(|_| StorageError::Corrupt("posting doc delta overflow".into()))?;
        let doc = prev
            .doc
            .checked_add(doc_delta)
            .ok_or_else(|| StorageError::Corrupt("posting doc overflow".into()))?;
        let offset = if doc_delta == 0 {
            prev.offset
                .checked_add(off_val as u32)
                .ok_or_else(|| StorageError::Corrupt("posting offset overflow".into()))?
        } else {
            off_val as u32
        };
        prev = Position { doc, offset };
        out.push(prev);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// RPLs table: key (term, inv_score, sid, doc, end) → varint length
// ---------------------------------------------------------------------------

/// Encodes an `RPLs` key. The score is embedded order-inverted so ascending
/// scans run in descending relevance.
pub fn rpl_key(term: TermId, score: f32, sid: Sid, element: ElementRef) -> Vec<u8> {
    let mut k = Vec::with_capacity(20);
    put_u32(&mut k, term);
    put_u32(&mut k, inverted_score_bits(score));
    put_u32(&mut k, sid);
    put_u32(&mut k, element.doc);
    put_u32(&mut k, element.end);
    k
}

/// An entry decoded from the `RPLs` table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RplEntry {
    /// The term this entry belongs to.
    pub term: TermId,
    /// Relevance score of (element, term).
    pub score: f32,
    /// Summary node of the element.
    pub sid: Sid,
    /// The element.
    pub element: ElementRef,
}

/// Decodes an `RPLs` entry from its key and value.
pub fn decode_rpl(key: &[u8], value: &[u8]) -> Result<RplEntry> {
    let term = get_u32(key, 0)?;
    let score = score_from_inverted_bits(get_u32(key, 4)?);
    if !score.is_finite() {
        // Writers only ever encode finite scores (`put_list` asserts it), so
        // a NaN/∞ here is a corrupt key — surface it instead of letting the
        // poison value reach TA's comparison-based candidate bookkeeping.
        return Err(StorageError::Corrupt("non-finite RPL score".into()));
    }
    let sid = get_u32(key, 8)?;
    let doc = get_u32(key, 12)?;
    let end = get_u32(key, 16)?;
    let (length, _) = read_varint_u32(value)?;
    Ok(RplEntry {
        term,
        score,
        sid,
        element: validate_span(ElementRef { doc, end, length })?,
    })
}

// ---------------------------------------------------------------------------
// ERPLs table: key (term, sid, doc, end) → score + varint length
// ---------------------------------------------------------------------------

/// Encodes an `ERPLs` key: position order within (term, sid).
pub fn erpl_key(term: TermId, sid: Sid, element: ElementRef) -> Vec<u8> {
    let mut k = Vec::with_capacity(16);
    put_u32(&mut k, term);
    put_u32(&mut k, sid);
    put_u32(&mut k, element.doc);
    put_u32(&mut k, element.end);
    k
}

/// Encodes an `ERPLs` value.
pub fn erpl_value(score: f32, length: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(9);
    v.extend_from_slice(&score.to_le_bytes());
    write_varint(&mut v, length as u64);
    v
}

/// Decodes an `ERPLs` entry (same shape as an RPL entry).
pub fn decode_erpl(key: &[u8], value: &[u8]) -> Result<RplEntry> {
    let term = get_u32(key, 0)?;
    let sid = get_u32(key, 4)?;
    let doc = get_u32(key, 8)?;
    let end = get_u32(key, 12)?;
    if value.len() < 4 {
        return Err(StorageError::Corrupt("short ERPL value".into()));
    }
    let score = f32::from_le_bytes(value[..4].try_into().unwrap());
    if !score.is_finite() {
        return Err(StorageError::Corrupt("non-finite ERPL score".into()));
    }
    let (length, _) = read_varint_u32(&value[4..])?;
    Ok(RplEntry {
        term,
        score,
        sid,
        element: validate_span(ElementRef { doc, end, length })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_order_and_successor() {
        let a = Position { doc: 1, offset: 5 };
        let b = Position { doc: 1, offset: 6 };
        let c = Position { doc: 2, offset: 0 };
        assert!(a < b && b < c && c < Position::MAX);
        assert_eq!(a.successor(), b);
        assert_eq!(
            Position {
                doc: 1,
                offset: u32::MAX
            }
            .successor(),
            c.successor()
                .successor()
                .min(Position { doc: 2, offset: 0 })
        );
        assert_eq!(Position::MAX.successor(), Position::MAX);
        assert!(Position::MAX.is_max());
    }

    #[test]
    fn element_span_arithmetic() {
        let e = ElementRef {
            doc: 3,
            end: 9,
            length: 4,
        };
        assert_eq!(e.start(), 6);
        assert!(e.contains(Position { doc: 3, offset: 6 }));
        assert!(e.contains(Position { doc: 3, offset: 9 }));
        assert!(!e.contains(Position { doc: 3, offset: 5 }));
        assert!(!e.contains(Position { doc: 3, offset: 10 }));
        assert!(!e.contains(Position { doc: 4, offset: 7 }));
    }

    #[test]
    fn element_start_does_not_overflow_at_extremes() {
        // end == u32::MAX with length 1: `end + 1 - length` would wrap.
        let e = ElementRef {
            doc: 0,
            end: u32::MAX,
            length: 1,
        };
        assert!(e.span_is_valid());
        assert_eq!(e.start(), u32::MAX);
        assert!(e.contains(Position {
            doc: 0,
            offset: u32::MAX
        }));

        // Full-document span ending at u32::MAX.
        let full = ElementRef {
            doc: 0,
            end: u32::MAX,
            length: u32::MAX,
        };
        assert!(full.span_is_valid());
        assert_eq!(full.start(), 1);

        // Corrupt spans clamp instead of wrapping, and never "contain".
        let empty = ElementRef {
            doc: 0,
            end: 5,
            length: 0,
        };
        assert!(!empty.span_is_valid());
        assert_eq!(empty.start(), 5);
        assert!(!empty.contains(Position { doc: 0, offset: 5 }));
        let over = ElementRef {
            doc: 0,
            end: 2,
            length: 9,
        };
        assert!(!over.span_is_valid());
        assert_eq!(over.start(), 0);
        assert!(!over.contains(Position { doc: 0, offset: 1 }));
    }

    #[test]
    fn invalid_spans_are_rejected_at_decode() {
        let e = ElementRef {
            doc: 0,
            end: 5,
            length: 2,
        };
        // length == 0 and length - 1 > end are both corrupt.
        for bad_len in [0u32, 7] {
            assert!(
                decode_rpl(&rpl_key(4, 1.0, 1, e), &elements_value(bad_len)).is_err(),
                "RPL length {bad_len} with end 5 must be Corrupt"
            );
            assert!(
                decode_erpl(&erpl_key(4, 1, e), &erpl_value(1.0, bad_len)).is_err(),
                "ERPL length {bad_len} with end 5 must be Corrupt"
            );
        }
        // A length that does not fit u32 is corrupt, not truncated.
        let mut v = Vec::new();
        trex_storage::codec::write_varint(&mut v, u64::from(u32::MAX) + 2);
        assert!(decode_rpl(&rpl_key(4, 1.0, 1, e), &v).is_err());
    }

    #[test]
    fn elements_key_round_trip_and_order() {
        let k1 = elements_key(7, 2, 30);
        let k2 = elements_key(7, 2, 31);
        let k3 = elements_key(7, 3, 0);
        let k4 = elements_key(8, 0, 0);
        assert!(k1 < k2 && k2 < k3 && k3 < k4);
        assert_eq!(decode_elements_key(&k1).unwrap(), (7, 2, 30));
        assert_eq!(decode_elements_value(&elements_value(17)).unwrap(), 17);
    }

    #[test]
    fn postings_chunk_round_trip() {
        let positions = vec![
            Position { doc: 0, offset: 3 },
            Position { doc: 0, offset: 9 },
            Position { doc: 2, offset: 1 },
            Position { doc: 2, offset: 2 },
            Position::MAX,
        ];
        let v = postings_value(&positions);
        let back = decode_postings_value(positions[0], &v).unwrap();
        assert_eq!(back, positions);
    }

    #[test]
    fn postings_empty_chunk() {
        let v = postings_value(&[]);
        assert!(decode_postings_value(Position::MIN, &v).unwrap().is_empty());
    }

    #[test]
    fn postings_key_orders_by_term_then_position() {
        let a = postings_key(1, Position { doc: 9, offset: 9 });
        let b = postings_key(2, Position { doc: 0, offset: 0 });
        assert!(a < b);
        let (term, pos) = decode_postings_key(&a).unwrap();
        assert_eq!(term, 1);
        assert_eq!(pos, Position { doc: 9, offset: 9 });
    }

    #[test]
    fn rpl_keys_scan_in_descending_score_order() {
        let e = ElementRef {
            doc: 0,
            end: 5,
            length: 2,
        };
        let high = rpl_key(4, 9.5, 1, e);
        let mid = rpl_key(4, 1.25, 1, e);
        let low = rpl_key(4, 0.01, 1, e);
        assert!(
            high < mid && mid < low,
            "ascending key order = descending score"
        );
        let entry = decode_rpl(&high, &elements_value(2)).unwrap();
        assert_eq!(entry.term, 4);
        assert_eq!(entry.score, 9.5);
        assert_eq!(entry.sid, 1);
        assert_eq!(entry.element, e);
    }

    #[test]
    fn erpl_round_trip_and_position_order() {
        let e1 = ElementRef {
            doc: 1,
            end: 10,
            length: 3,
        };
        let e2 = ElementRef {
            doc: 1,
            end: 20,
            length: 5,
        };
        let k1 = erpl_key(9, 2, e1);
        let k2 = erpl_key(9, 2, e2);
        assert!(k1 < k2);
        let entry = decode_erpl(&k1, &erpl_value(3.5, 3)).unwrap();
        assert_eq!(entry.score, 3.5);
        assert_eq!(entry.element, e1);
        assert_eq!(entry.sid, 2);
    }

    #[test]
    fn non_finite_scores_are_rejected_at_decode() {
        let e = ElementRef {
            doc: 0,
            end: 5,
            length: 2,
        };
        // A hand-corrupted score field: the key encoder itself maps NaN to
        // bits that decode back to NaN, so a flipped bit on disk can too.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let key = rpl_key(4, bad, 1, e);
            assert!(
                decode_rpl(&key, &elements_value(2)).is_err(),
                "RPL score {bad} must decode as Corrupt"
            );
            assert!(
                decode_erpl(&erpl_key(4, 1, e), &erpl_value(bad, 2)).is_err(),
                "ERPL score {bad} must decode as Corrupt"
            );
        }
        // Finite scores still round-trip.
        assert!(decode_rpl(&rpl_key(4, 1.5, 1, e), &elements_value(2)).is_ok());
    }

    #[test]
    fn corrupt_values_are_rejected() {
        assert!(decode_elements_key(&[0, 1]).is_err());
        assert!(decode_erpl(
            &erpl_key(
                0,
                0,
                ElementRef {
                    doc: 0,
                    end: 0,
                    length: 1
                }
            ),
            &[1, 2]
        )
        .is_err());
    }
}
