//! Property tests of the NEXI parser: generated queries round-trip through
//! `Display`, and the parser never panics on arbitrary input.

use proptest::prelude::*;
use trex_nexi::{parse, Axis, Clause, Modifier, NameTest, Query, RelPath, RelStep, StepExpr, Term};

fn tag() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}".prop_map(|s| s)
}

fn name_test() -> impl Strategy<Value = NameTest> {
    prop_oneof![
        4 => tag().prop_map(NameTest::Tag),
        1 => Just(NameTest::Wildcard),
        1 => proptest::collection::vec(tag(), 2..4).prop_map(NameTest::Alternatives),
    ]
}

fn axis() -> impl Strategy<Value = Axis> {
    prop_oneof![Just(Axis::Child), Just(Axis::Descendant)]
}

fn term() -> impl Strategy<Value = Term> {
    (
        "[a-z]{2,8}",
        prop_oneof![
            3 => Just(Modifier::None),
            1 => Just(Modifier::Plus),
            1 => Just(Modifier::Minus)
        ],
    )
        .prop_map(|(text, modifier)| Term {
            text,
            modifier,
            from_phrase: false,
        })
}

fn about() -> impl Strategy<Value = Clause> {
    (
        proptest::collection::vec((axis(), name_test()), 0..3),
        proptest::collection::vec(term(), 1..4),
    )
        .prop_map(|(steps, terms)| Clause::About {
            path: RelPath {
                steps: steps
                    .into_iter()
                    .map(|(axis, test)| RelStep { axis, test })
                    .collect(),
            },
            terms,
        })
}

fn clause() -> impl Strategy<Value = Clause> {
    about().prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner, any::<bool>()).prop_map(|(l, r, and)| {
            if and {
                Clause::And(Box::new(l), Box::new(r))
            } else {
                Clause::Or(Box::new(l), Box::new(r))
            }
        })
    })
}

fn query() -> impl Strategy<Value = Query> {
    proptest::collection::vec((axis(), name_test(), proptest::option::of(clause())), 1..4).prop_map(
        |steps| Query {
            steps: steps
                .into_iter()
                .map(|(axis, test, filter)| StepExpr { axis, test, filter })
                .collect(),
        },
    )
}

proptest! {
    /// Display → parse is the identity on the AST (up to phrase flags,
    /// which Display erases; our generator never sets them).
    #[test]
    fn prop_display_parse_round_trip(q in query()) {
        let text = q.to_string();
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("display output failed to parse: {text:?}: {e}"));
        prop_assert_eq!(reparsed, q);
    }

    #[test]
    fn prop_parser_never_panics(input in "\\PC{0,120}") {
        let _ = parse(&input);
    }

    /// Left-associativity: a chain of n predicates yields n abouts in order.
    #[test]
    fn prop_about_collection_is_in_order(terms in proptest::collection::vec("[a-z]{2,6}", 1..5)) {
        let clause = terms
            .iter()
            .map(|t| format!("about(., {t})"))
            .collect::<Vec<_>>()
            .join(" and ");
        let q = parse(&format!("//a[{clause}]")).unwrap();
        let abouts = q.abouts();
        prop_assert_eq!(abouts.len(), terms.len());
        for ((_, _, parsed), want) in abouts.iter().zip(&terms) {
            prop_assert_eq!(&parsed[0].text, want);
        }
    }
}
