//! Abstract syntax of NEXI retrieval queries.
//!
//! NEXI (Narrowed Extended XPath I, Trotman & Sigurbjörnsson 2004) narrows
//! XPath to the child and descendant axes with name tests, and extends it
//! with the `about(path, terms)` relevance predicate. A query is a location
//! path whose steps may carry filters built from `about()` predicates
//! combined with `and` / `or`.

use std::fmt;

/// Axis of a location step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — child.
    Child,
    /// `//` — descendant-or-self.
    Descendant,
}

/// Name test of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    /// A single tag name.
    Tag(String),
    /// `*` — any tag.
    Wildcard,
    /// `(a|b|c)` — tag disjunction.
    Alternatives(Vec<String>),
}

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Tag(t) => f.write_str(t),
            NameTest::Wildcard => f.write_str("*"),
            NameTest::Alternatives(tags) => write!(f, "({})", tags.join("|")),
        }
    }
}

/// A step of the outer location path, optionally filtered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepExpr {
    /// The step's axis.
    pub axis: Axis,
    /// The step's name test.
    pub test: NameTest,
    /// The filter (`[...]`), if any.
    pub filter: Option<Clause>,
}

/// A step inside a relative `about()` path (no nested filters in NEXI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelStep {
    /// The step's axis.
    pub axis: Axis,
    /// The step's name test.
    pub test: NameTest,
}

/// The relative path that is the first argument of `about()`: `.` optionally
/// followed by steps (`.//bdy`, `./sec/title`, …).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelPath {
    /// Steps after the leading `.`; empty for plain `.`.
    pub steps: Vec<RelStep>,
}

/// Keyword modifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modifier {
    /// Unmarked keyword.
    None,
    /// `+word` — emphasised.
    Plus,
    /// `-word` — undesired.
    Minus,
}

/// One search keyword (phrases are expanded into their words; each word
/// keeps the phrase's modifier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// The raw keyword as written.
    pub text: String,
    /// The modifier.
    pub modifier: Modifier,
    /// Whether this word came from a quoted phrase.
    pub from_phrase: bool,
}

/// A filter clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// `about(path, terms)`.
    About {
        /// Where the relevance is assessed, relative to the step.
        path: RelPath,
        /// The search keywords.
        terms: Vec<Term>,
    },
    /// `lhs and rhs`.
    And(Box<Clause>, Box<Clause>),
    /// `lhs or rhs`.
    Or(Box<Clause>, Box<Clause>),
}

impl Clause {
    /// All `about()` predicates in the clause, left to right.
    pub fn abouts(&self) -> Vec<(&RelPath, &[Term])> {
        let mut out = Vec::new();
        self.collect_abouts(&mut out);
        out
    }

    fn collect_abouts<'a>(&'a self, out: &mut Vec<(&'a RelPath, &'a [Term])>) {
        match self {
            Clause::About { path, terms } => out.push((path, terms)),
            Clause::And(l, r) | Clause::Or(l, r) => {
                l.collect_abouts(out);
                r.collect_abouts(out);
            }
        }
    }
}

/// A parsed NEXI query: the outer location path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The steps of the outer path.
    pub steps: Vec<StepExpr>,
}

impl Query {
    /// Every `about()` predicate with the index of the step it filters.
    pub fn abouts(&self) -> Vec<(usize, &RelPath, &[Term])> {
        let mut out = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            if let Some(filter) = &step.filter {
                for (path, terms) in filter.abouts() {
                    out.push((i, path, terms));
                }
            }
        }
        out
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            f.write_str(match step.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            })?;
            write!(f, "{}", step.test)?;
            if let Some(filter) = &step.filter {
                write!(f, "[{filter}]")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::About { path, terms } => {
                f.write_str("about(.")?;
                for step in &path.steps {
                    f.write_str(match step.axis {
                        Axis::Child => "/",
                        Axis::Descendant => "//",
                    })?;
                    write!(f, "{}", step.test)?;
                }
                f.write_str(",")?;
                for t in terms {
                    f.write_str(" ")?;
                    match t.modifier {
                        Modifier::Plus => f.write_str("+")?,
                        Modifier::Minus => f.write_str("-")?,
                        Modifier::None => {}
                    }
                    f.write_str(&t.text)?;
                }
                f.write_str(")")
            }
            Clause::And(l, r) => {
                write_operand(f, l)?;
                f.write_str(" and ")?;
                write_operand(f, r)
            }
            Clause::Or(l, r) => {
                write_operand(f, l)?;
                f.write_str(" or ")?;
                write_operand(f, r)
            }
        }
    }
}

/// Writes a clause operand, parenthesising composite clauses so that the
/// printed form re-parses to the same tree (the parser is left-associative).
fn write_operand(f: &mut fmt::Formatter<'_>, clause: &Clause) -> fmt::Result {
    match clause {
        Clause::About { .. } => write!(f, "{clause}"),
        _ => write!(f, "({clause})"),
    }
}
