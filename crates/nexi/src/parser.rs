//! Recursive-descent parser for NEXI queries.

use std::fmt;

use crate::ast::{Axis, Clause, Modifier, NameTest, Query, RelPath, RelStep, StepExpr, Term};

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the query text.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NEXI parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing.
pub type Result<T> = std::result::Result<T, ParseError>;

/// Parses a NEXI query such as
/// `//article[about(., XML)]//sec[about(., query evaluation)]`.
pub fn parse(input: &str) -> Result<Query> {
    let mut p = Parser { input, pos: 0 };
    let query = p.parse_query()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(query)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}")))
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.skip_ws();
        let mut steps = Vec::new();
        loop {
            self.skip_ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else if steps.is_empty() {
                return Err(self.err("a NEXI query starts with '/' or '//'"));
            } else {
                break;
            };
            steps.push(self.parse_step(axis)?);
        }
        if steps.is_empty() {
            return Err(self.err("empty query"));
        }
        Ok(Query { steps })
    }

    fn parse_step(&mut self, axis: Axis) -> Result<StepExpr> {
        let test = self.parse_name_test()?;
        self.skip_ws();
        let filter = if self.eat("[") {
            let clause = self.parse_clause()?;
            self.skip_ws();
            self.expect("]")?;
            Some(clause)
        } else {
            None
        };
        Ok(StepExpr { axis, test, filter })
    }

    fn parse_name_test(&mut self) -> Result<NameTest> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(NameTest::Wildcard);
        }
        if self.eat("(") {
            let mut tags = vec![self.parse_name()?];
            loop {
                self.skip_ws();
                if self.eat("|") {
                    tags.push(self.parse_name()?);
                } else {
                    break;
                }
            }
            self.expect(")")?;
            return Ok(NameTest::Alternatives(tags));
        }
        Ok(NameTest::Tag(self.parse_name()?))
    }

    fn parse_name(&mut self) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
            };
            if !ok {
                break;
            }
            end = i + c.len_utf8();
        }
        if end == 0 {
            return Err(self.err("expected a tag name"));
        }
        let name = rest[..end].to_string();
        self.pos += end;
        Ok(name)
    }

    /// `clause := term (('and' | 'or') term)*`, left-associative.
    fn parse_clause(&mut self) -> Result<Clause> {
        let mut lhs = self.parse_clause_atom()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("and") {
                let rhs = self.parse_clause_atom()?;
                lhs = Clause::And(Box::new(lhs), Box::new(rhs));
            } else if self.eat_keyword("or") {
                let rhs = self.parse_clause_atom()?;
                lhs = Clause::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(after) = self.rest().strip_prefix(kw) {
            if after.chars().next().is_none_or(|c| !c.is_alphanumeric()) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn parse_clause_atom(&mut self) -> Result<Clause> {
        self.skip_ws();
        if self.eat("(") {
            let inner = self.parse_clause()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(inner);
        }
        if self.eat_keyword("about") {
            self.skip_ws();
            self.expect("(")?;
            let path = self.parse_rel_path()?;
            self.skip_ws();
            self.expect(",")?;
            let terms = self.parse_terms()?;
            self.expect(")")?;
            return Ok(Clause::About { path, terms });
        }
        Err(self.err("expected about(...) or a parenthesised clause"))
    }

    fn parse_rel_path(&mut self) -> Result<RelPath> {
        self.skip_ws();
        self.expect(".")?;
        let mut steps = Vec::new();
        loop {
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else {
                break;
            };
            let test = self.parse_name_test()?;
            steps.push(RelStep { axis, test });
        }
        Ok(RelPath { steps })
    }

    /// Keywords up to the closing `)`: bare words, `+`/`-` modified words,
    /// and quoted phrases (expanded word-by-word).
    fn parse_terms(&mut self) -> Result<Vec<Term>> {
        let mut terms = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated about(...)")),
                Some(')') => break,
                Some(_) => {}
            }
            let modifier = if self.eat("+") {
                Modifier::Plus
            } else if self.eat("-") {
                Modifier::Minus
            } else {
                Modifier::None
            };
            self.skip_ws();
            if self.eat("\"") {
                let rest = self.rest();
                let Some(end) = rest.find('"') else {
                    return Err(self.err("unterminated phrase"));
                };
                let phrase = &rest[..end];
                self.pos += end + 1;
                for word in phrase.split_whitespace() {
                    terms.push(Term {
                        text: word.to_string(),
                        modifier,
                        from_phrase: true,
                    });
                }
            } else {
                let word = self.parse_word()?;
                terms.push(Term {
                    text: word,
                    modifier,
                    from_phrase: false,
                });
            }
        }
        if terms.is_empty() {
            return Err(self.err("about(...) needs at least one keyword"));
        }
        Ok(terms)
    }

    fn parse_word(&mut self) -> Result<String> {
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if c.is_alphanumeric() || matches!(c, '_' | '\'' | '-') && i > 0 {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            return Err(self.err("expected a keyword"));
        }
        let word = rest[..end].to_string();
        self.pos += end;
        Ok(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let q = parse("//article[about(., XML)]//sec[about(., query evaluation)]").unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[0].test, NameTest::Tag("article".into()));
        assert_eq!(q.steps[1].test, NameTest::Tag("sec".into()));
        let abouts = q.abouts();
        assert_eq!(abouts.len(), 2);
        assert_eq!(abouts[0].0, 0);
        assert_eq!(abouts[1].0, 1);
        assert_eq!(abouts[1].2.len(), 2);
        assert_eq!(abouts[1].2[0].text, "query");
    }

    #[test]
    fn parses_all_table1_queries() {
        let queries = [
            "//article[about(., ontologies)]//sec[about(., ontologies case study)]",
            "//sec[about(., code signing verification)]",
            "//article[about (.//bdy, synthesizers) and about (.//bdy, music)]",
            "//bdy//*[about(., model checking state space explosion)]",
            "//article//sec[about(., introduction information retrieval)]",
            "//article[about(., \"genetic algorithm\")]",
            "//article//figure[about(., Renaissance painting Italian Flemish -French -German)]",
        ];
        for q in queries {
            parse(q).unwrap_or_else(|e| panic!("failed to parse {q}: {e}"));
        }
    }

    #[test]
    fn relative_about_paths() {
        let q = parse("//article[about(.//bdy, music)]").unwrap();
        let abouts = q.abouts();
        let rel = abouts[0].1;
        assert_eq!(rel.steps.len(), 1);
        assert_eq!(rel.steps[0].axis, Axis::Descendant);
        assert_eq!(rel.steps[0].test, NameTest::Tag("bdy".into()));
    }

    #[test]
    fn phrases_expand_to_words() {
        let q = parse("//article[about(., \"genetic algorithm\")]").unwrap();
        let abouts = q.abouts();
        let terms = abouts[0].2;
        assert_eq!(terms.len(), 2);
        assert!(terms.iter().all(|t| t.from_phrase));
    }

    #[test]
    fn minus_terms_carry_modifier() {
        let q = parse("//figure[about(., painting -French -German)]").unwrap();
        let terms = q.abouts()[0].2.to_vec();
        assert_eq!(terms[0].modifier, Modifier::None);
        assert_eq!(terms[1].modifier, Modifier::Minus);
        assert_eq!(terms[1].text, "French");
        assert_eq!(terms[2].modifier, Modifier::Minus);
    }

    #[test]
    fn and_or_build_left_associative_trees() {
        let q = parse("//a[about(., x) and about(., y) or about(., z)]").unwrap();
        let Clause::Or(lhs, _) = q.steps[0].filter.as_ref().unwrap() else {
            panic!("expected Or at the top");
        };
        assert!(matches!(**lhs, Clause::And(_, _)));
    }

    #[test]
    fn wildcard_and_alternatives() {
        let q = parse("//bdy//*[about(., explosion)]").unwrap();
        assert_eq!(q.steps[1].test, NameTest::Wildcard);
        let q = parse("//article//(sec|p)[about(., music)]").unwrap();
        assert_eq!(
            q.steps[1].test,
            NameTest::Alternatives(vec!["sec".into(), "p".into()])
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        let text = "//article[about(., ontologies)]//sec[about(., ontologies case study)]";
        let q = parse(text).unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "article//sec",
            "//article[about(., )]",
            "//article[about(.]",
            "//article[notabout(., x)]",
            "//article[about(., x)] tail",
            "//article[about(., \"unterminated)]",
            "//[about(., x)]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_flexible() {
        parse("//article[ about ( . , XML ) ]").unwrap();
        parse("//article[about (.//bdy, synthesizers) and about (.//bdy, music)]").unwrap();
    }
}
