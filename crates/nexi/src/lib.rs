//! # trex-nexi
//!
//! NEXI — Narrowed Extended XPath I — is the INEX retrieval language the
//! paper evaluates (§1): XPath narrowed to child/descendant axes and name
//! tests, extended with the `about(path, keywords)` relevance predicate.
//!
//! This crate provides the parser ([`parser`]), the AST ([`ast`]) and the
//! translation phase ([`mod@translate`]) that maps each root-to-`about()` path
//! to a (sid set, term set) pair against a structural summary (paper §3.1).
//!
//! ```
//! use trex_nexi::parse;
//!
//! let query = parse("//article[about(., XML)]//sec[about(., query evaluation)]").unwrap();
//! assert_eq!(query.abouts().len(), 2);
//! assert_eq!(query.to_string(), "//article[about(., XML)]//sec[about(., query evaluation)]");
//! ```

pub mod ast;
pub mod parser;
pub mod translate;

pub use ast::{Axis, Clause, Modifier, NameTest, Query, RelPath, RelStep, StepExpr, Term};
pub use parser::{parse, ParseError};
pub use translate::{
    translate, ClauseTranslation, Interpretation, Translation, TranslationContext,
};
