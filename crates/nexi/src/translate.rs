//! Query translation: NEXI query → (sid set, term set).
//!
//! "In the translation phase, each path p in the query from the root to an
//! about() function is translated to a set of sids and a set of terms"
//! (paper §3.1). The retrieval phase then works on the union of those sets —
//! exactly the `#sids` / `#terms` columns of the paper's Table 1.
//!
//! Interpretation of structural constraints:
//!
//! * **Strict** — query labels are matched verbatim against the summary.
//! * **Vague** — query labels are first alias-resolved ("the article and sec
//!   tags can be replaced by any other tag names, presumably having the same
//!   meaning", §1), matching how TReX uses the alias incoming summary.

use trex_summary::{AliasMap, PathPattern, Sid, Step, Summary};
use trex_text::{Analyzer, Dictionary, TermId};

use crate::ast::{Axis, Modifier, NameTest, Query, RelPath};

/// How structural constraints are interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interpretation {
    /// Labels matched verbatim.
    Strict,
    /// Labels alias-resolved before matching (TReX's default).
    #[default]
    Vague,
}

/// The translation of one `about()` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClauseTranslation {
    /// Index of the outer step the clause filters.
    pub step: usize,
    /// Sids whose extents intersect the clause's absolute path.
    pub sids: Vec<Sid>,
    /// Positive search terms (index form).
    pub terms: Vec<TermId>,
    /// Negative (`-word`) terms (index form).
    pub minus_terms: Vec<TermId>,
}

/// The translation of a whole query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// Union of clause sids — the paper's `#sids`.
    pub sids: Vec<Sid>,
    /// Union of positive clause terms — the paper's `#terms`.
    pub terms: Vec<TermId>,
    /// Union of negative terms (excluded from scoring).
    pub minus_terms: Vec<TermId>,
    /// Sids of the full outer path (where answers are drawn from when the
    /// last step carries the target clause).
    pub target_sids: Vec<Sid>,
    /// Per-clause detail.
    pub clauses: Vec<ClauseTranslation>,
    /// Query keywords that are not in the collection vocabulary (they cannot
    /// contribute matches; reported for diagnostics).
    pub unknown_terms: Vec<String>,
}

/// Everything translation needs from the index catalog.
pub struct TranslationContext<'a> {
    /// The structural summary used for path matching.
    pub summary: &'a Summary,
    /// The alias mapping the summary was built with.
    pub alias: &'a AliasMap,
    /// The term dictionary of the collection.
    pub dictionary: &'a Dictionary,
    /// The analyzer the collection was indexed with.
    pub analyzer: &'a Analyzer,
    /// Structural interpretation.
    pub interpretation: Interpretation,
}

/// Translates `query` against the catalog in `ctx`.
pub fn translate(query: &Query, ctx: &TranslationContext<'_>) -> Translation {
    let mut clauses = Vec::new();
    let mut unknown_terms = Vec::new();

    for (step_idx, rel_path, terms) in query.abouts() {
        let patterns = absolute_patterns(query, step_idx, rel_path, ctx);
        let mut sids: Vec<Sid> = patterns
            .iter()
            .flat_map(|p| p.match_summary(ctx.summary))
            .collect();
        sids.sort_unstable();
        sids.dedup();

        let mut positive = Vec::new();
        let mut negative = Vec::new();
        for term in terms {
            let Some(normalised) = ctx.analyzer.analyze_keyword(&term.text) else {
                continue; // stopword or non-word keyword
            };
            match ctx.dictionary.lookup(&normalised) {
                Some(id) => match term.modifier {
                    Modifier::Minus => negative.push(id),
                    _ => positive.push(id),
                },
                None => unknown_terms.push(term.text.clone()),
            }
        }
        positive.sort_unstable();
        positive.dedup();
        negative.sort_unstable();
        negative.dedup();

        clauses.push(ClauseTranslation {
            step: step_idx,
            sids,
            terms: positive,
            minus_terms: negative,
        });
    }

    let mut sids: Vec<Sid> = clauses
        .iter()
        .flat_map(|c| c.sids.iter().copied())
        .collect();
    sids.sort_unstable();
    sids.dedup();
    let mut terms: Vec<TermId> = clauses
        .iter()
        .flat_map(|c| c.terms.iter().copied())
        .collect();
    terms.sort_unstable();
    terms.dedup();
    let mut minus_terms: Vec<TermId> = clauses
        .iter()
        .flat_map(|c| c.minus_terms.iter().copied())
        .collect();
    minus_terms.sort_unstable();
    minus_terms.dedup();

    let mut target_sids: Vec<Sid> = full_path_patterns(query, ctx)
        .iter()
        .flat_map(|p| p.match_summary(ctx.summary))
        .collect();
    target_sids.sort_unstable();
    target_sids.dedup();

    unknown_terms.sort();
    unknown_terms.dedup();

    Translation {
        sids,
        terms,
        minus_terms,
        target_sids,
        clauses,
        unknown_terms,
    }
}

/// The absolute path of an `about()` clause: the outer steps up to (and
/// including) the filtered step, extended with the relative path. Name-test
/// alternatives multiply into several patterns.
fn absolute_patterns(
    query: &Query,
    step_idx: usize,
    rel: &RelPath,
    ctx: &TranslationContext<'_>,
) -> Vec<PathPattern> {
    let mut step_choices: Vec<(bool, Vec<Option<String>>)> = Vec::new();
    for step in &query.steps[..=step_idx] {
        step_choices.push((
            step.axis == Axis::Descendant,
            name_test_choices(&step.test, ctx),
        ));
    }
    for step in &rel.steps {
        step_choices.push((
            step.axis == Axis::Descendant,
            name_test_choices(&step.test, ctx),
        ));
    }
    expand_patterns(&step_choices)
}

fn full_path_patterns(query: &Query, ctx: &TranslationContext<'_>) -> Vec<PathPattern> {
    let step_choices: Vec<(bool, Vec<Option<String>>)> = query
        .steps
        .iter()
        .map(|s| (s.axis == Axis::Descendant, name_test_choices(&s.test, ctx)))
        .collect();
    expand_patterns(&step_choices)
}

fn name_test_choices(test: &NameTest, ctx: &TranslationContext<'_>) -> Vec<Option<String>> {
    let resolve = |label: &str| -> String {
        match ctx.interpretation {
            Interpretation::Strict => label.to_string(),
            Interpretation::Vague => ctx.alias.resolve(label).to_string(),
        }
    };
    match test {
        NameTest::Tag(t) => vec![Some(resolve(t))],
        NameTest::Wildcard => vec![None],
        NameTest::Alternatives(tags) => {
            let mut out: Vec<Option<String>> = tags.iter().map(|t| Some(resolve(t))).collect();
            out.dedup();
            out
        }
    }
}

/// Cartesian expansion of per-step label choices into concrete patterns.
fn expand_patterns(step_choices: &[(bool, Vec<Option<String>>)]) -> Vec<PathPattern> {
    let mut partials: Vec<Vec<Step>> = vec![Vec::new()];
    for (descendant, choices) in step_choices {
        let mut next = Vec::with_capacity(partials.len() * choices.len());
        for partial in &partials {
            for choice in choices {
                let mut steps = partial.clone();
                steps.push(Step {
                    descendant: *descendant,
                    label: choice.clone(),
                });
                next.push(steps);
            }
        }
        partials = next;
    }
    partials.into_iter().map(PathPattern::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use trex_summary::{SummaryBuilder, SummaryKind};
    use trex_xml::Document;

    fn catalog() -> (Summary, AliasMap, Dictionary, Analyzer) {
        let docs = [
            "<article><bdy><sec>xml query evaluation</sec><ss1>ontologies case study</ss1></bdy></article>",
            "<article><bdy><p>music synthesizers</p></bdy><bm><sec>appendix ontologies</sec></bm></article>",
        ];
        let alias = AliasMap::inex_ieee();
        let mut builder = SummaryBuilder::new(SummaryKind::Incoming, alias);
        let mut dictionary = Dictionary::new();
        let analyzer = Analyzer::default();
        for d in docs {
            let doc = Document::parse(d).unwrap();
            builder.add_document(&doc);
            // Analyze each text node separately, as the index builder does.
            for node in doc.descendants(doc.root()) {
                if let trex_xml::NodeKind::Text(t) = &doc.node(node).kind {
                    let (tokens, _) = analyzer.analyze_from(t, 0);
                    for t in tokens {
                        dictionary.intern(&t.text);
                    }
                }
            }
        }
        let (summary, alias) = builder.finish();
        (summary, alias, dictionary, analyzer)
    }

    fn ctx<'a>(
        summary: &'a Summary,
        alias: &'a AliasMap,
        dictionary: &'a Dictionary,
        analyzer: &'a Analyzer,
        interpretation: Interpretation,
    ) -> TranslationContext<'a> {
        TranslationContext {
            summary,
            alias,
            dictionary,
            analyzer,
            interpretation,
        }
    }

    #[test]
    fn union_of_sids_and_terms_matches_table1_semantics() {
        let (summary, alias, dictionary, analyzer) = catalog();
        let c = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Vague,
        );
        let q =
            parse("//article[about(., ontologies)]//sec[about(., ontologies case study)]").unwrap();
        let t = translate(&q, &c);
        // sids: article (1) + article//sec (bdy/sec and bm/sec = 2) = 3.
        assert_eq!(t.sids.len(), 3);
        // terms: {ontolog, case, studi} — union, deduplicated.
        assert_eq!(t.terms.len(), 3);
        assert!(t.unknown_terms.is_empty());
        assert_eq!(t.clauses.len(), 2);
        assert_eq!(t.clauses[0].sids.len(), 1);
        assert_eq!(t.clauses[1].sids.len(), 2);
        // Answers are sec elements.
        assert_eq!(t.target_sids, t.clauses[1].sids);
    }

    #[test]
    fn vague_interpretation_resolves_aliases() {
        let (summary, alias, dictionary, analyzer) = catalog();
        let q = parse("//article//ss1[about(., ontologies)]").unwrap();
        // Vague: ss1 → sec, matches both sec sids.
        let vague = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Vague,
        );
        let t = translate(&q, &vague);
        assert_eq!(t.sids.len(), 2);
        // Strict: the summary has no literal ss1 label (it was aliased away).
        let strict = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Strict,
        );
        let t = translate(&q, &strict);
        assert!(t.sids.is_empty());
    }

    #[test]
    fn relative_about_paths_extend_the_clause_path() {
        let (summary, alias, dictionary, analyzer) = catalog();
        let c = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Vague,
        );
        let q = parse("//article[about(.//bdy, synthesizers) and about(.//bdy, music)]").unwrap();
        let t = translate(&q, &c);
        // Both clauses resolve to the article//bdy sid.
        assert_eq!(t.sids.len(), 1);
        assert_eq!(summary.node(t.sids[0]).label, "bdy");
        // Terms: synthesizers → synthes, music.
        assert_eq!(t.terms.len(), 2);
        // Target is the article element.
        assert_eq!(t.target_sids.len(), 1);
        assert_eq!(summary.node(t.target_sids[0]).label, "article");
    }

    #[test]
    fn minus_terms_are_separated() {
        let (summary, alias, dictionary, analyzer) = catalog();
        let c = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Vague,
        );
        let q = parse("//article[about(., music -ontologies)]").unwrap();
        let t = translate(&q, &c);
        assert_eq!(t.terms.len(), 1);
        assert_eq!(t.minus_terms.len(), 1);
        assert_ne!(t.terms[0], t.minus_terms[0]);
    }

    #[test]
    fn unknown_and_stopword_terms_are_reported_or_dropped() {
        let (summary, alias, dictionary, analyzer) = catalog();
        let c = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Vague,
        );
        let q = parse("//article[about(., the zzzunknown music)]").unwrap();
        let t = translate(&q, &c);
        assert_eq!(t.terms.len(), 1, "only 'music' survives");
        assert_eq!(t.unknown_terms, vec!["zzzunknown"]);
    }

    #[test]
    fn wildcard_step_matches_everything_under_prefix() {
        let (summary, alias, dictionary, analyzer) = catalog();
        let c = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Vague,
        );
        let q = parse("//bdy//*[about(., music)]").unwrap();
        let t = translate(&q, &c);
        // bdy descendants: sec, p (ss1 collapsed into sec).
        assert_eq!(t.sids.len(), 2);
    }

    #[test]
    fn alternatives_union_their_sids() {
        let (summary, alias, dictionary, analyzer) = catalog();
        let c = ctx(
            &summary,
            &alias,
            &dictionary,
            &analyzer,
            Interpretation::Vague,
        );
        let q = parse("//article//(sec|p)[about(., music)]").unwrap();
        let t = translate(&q, &c);
        // sec under bdy, sec under bm, p under bdy.
        assert_eq!(t.sids.len(), 3);
    }
}
