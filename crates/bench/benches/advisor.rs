//! Benches of the §4 selection algorithms (boolean LP vs greedy) on
//! synthetic cost instances, and of the end-to-end advisor pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trex::core::selfmanage::{solve_greedy, solve_lp, ListId, QueryCost};
use trex::corpus::Collection;
use trex::{AdvisorOptions, SelectionMethod, Workload};
use trex_bench::{build_collection, Scale};

/// Deterministic synthetic cost instances of `l` queries.
fn instance(l: usize) -> Vec<QueryCost> {
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    (0..l)
        .map(|i| QueryCost {
            frequency: 1.0 / l as f64,
            measured_era: (next() % 2000) as f64 / 10.0,
            delta_merge: (next() % 1000) as f64 / 10.0,
            delta_ta: (next() % 1000) as f64 / 10.0,
            erpl_lists: vec![ListId {
                term: i as u32,
                sid: 0,
                bytes: next() % 10_000 + 1,
            }],
            rpl_lists: vec![ListId {
                term: i as u32,
                sid: 1,
                bytes: next() % 10_000 + 1,
            }],
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    for l in [5usize, 10, 15] {
        let costs = instance(l);
        let budget: u64 = costs.iter().map(|q| q.s_erpl() + q.s_rpl()).sum::<u64>() / 3;
        group.bench_with_input(BenchmarkId::new("lp_exact", l), &l, |b, _| {
            b.iter(|| solve_lp(&costs, budget))
        });
        group.bench_with_input(BenchmarkId::new("greedy", l), &l, |b, _| {
            b.iter(|| solve_greedy(&costs, budget))
        });
    }
    // Greedy scales far beyond where the LP is sensible.
    for l in [100usize, 1000] {
        let costs = instance(l);
        let budget: u64 = costs.iter().map(|q| q.s_erpl() + q.s_rpl()).sum::<u64>() / 3;
        group.bench_with_input(BenchmarkId::new("greedy", l), &l, |b, _| {
            b.iter(|| solve_greedy(&costs, budget))
        });
    }
    group.finish();
}

fn bench_advisor_pipeline(c: &mut Criterion) {
    let sys = build_collection(Collection::Ieee, Scale::small().ieee_docs, true);
    let workload = Workload::from_weights(vec![
        (
            "//article//sec[about(., xml query evaluation)]".into(),
            2.0,
            10,
        ),
        ("//sec[about(., code signing verification)]".into(), 1.0, 10),
    ])
    .unwrap();
    let mut group = c.benchmark_group("advisor_pipeline");
    group.sample_size(10);
    group.bench_function("profile_and_apply", |b| {
        b.iter(|| {
            sys.advisor()
                .apply(
                    &workload,
                    AdvisorOptions {
                        budget_bytes: 1 << 20,
                        method: SelectionMethod::Greedy,
                        measure_runs: 1,
                    },
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_advisor_pipeline);
criterion_main!(benches);
