//! Live-ingestion bench, exported as `BENCH_ingest.json`.
//!
//! Measures the three costs the delta index trades between:
//!
//! * **Ingest throughput** — documents/second through the full
//!   `ingest_document` path (stage against the frozen summary/dictionary,
//!   WAL append + fsync, delta apply under the write gate).
//! * **Query latency vs delta size** — p50/p99 over the four-query mix at
//!   delta sizes 0, 1k and 10k documents: every query now combines its
//!   disk answers with a delta scan, so this sweep prices the in-memory
//!   overlay a fold has not yet drained.
//! * **Fold pause** — the write-gate critical section of folding the 10k
//!   delta into the B+tree tables (queries block for `pause`, not `wall`).
//!
//! Sanity asserted, not just reported: the fold drains the delta and the
//! mix's answers are byte-identical before and after it.

use std::time::Instant;

use trex::{EvalOptions, TrexConfig, TrexSystem};
use trex_bench::{bench_header, store_dir, Scale};

const MIX: [&str; 4] = [
    "//article//sec[about(., xml query evaluation)]",
    "//sec[about(., code signing verification)]",
    "//article//sec[about(., model checking state space)]",
    "//article[about(., information retrieval ranking)]",
];

/// Delta sizes (documents) the query sweep is measured at.
const DELTA_SIZES: [usize; 3] = [0, 1_000, 10_000];
/// Query repetitions per delta size (the mix round-robins through them).
const QUERY_REPS: usize = 64;
const K: usize = 10;

fn build_system() -> TrexSystem {
    let path = store_dir().join("ingest-bench.db");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(trex::storage::wal_path(&path));
    let gen = trex::corpus::IeeeGenerator::new(trex::corpus::CorpusConfig {
        docs: Scale::small().ieee_docs,
        ..trex::corpus::CorpusConfig::ieee_default()
    });
    TrexSystem::build(TrexConfig::new(&path), gen.documents()).expect("build bench collection")
}

/// One ingestable document; item `i` matches the first mix query so the
/// delta scan cost actually grows with the delta.
fn ingest_doc(i: usize) -> String {
    format!(
        "<books><journal><article><bdy><sec><st>stream</st>\
         <p>xml query evaluation stream item {i} with some filler prose \
         about retrieval systems</p></sec></bdy></article></journal></books>"
    )
}

/// p50/p99 (ms) of evaluating the mix `QUERY_REPS` times at the current
/// delta size.
fn query_latency(system: &TrexSystem) -> (f64, f64) {
    let engine = system.engine();
    let mut ns: Vec<u64> = Vec::with_capacity(QUERY_REPS);
    for i in 0..QUERY_REPS {
        let started = Instant::now();
        let result = engine
            .evaluate(MIX[i % MIX.len()], EvalOptions::new().k(Some(K)))
            .expect("bench query");
        std::hint::black_box(result.answers.len());
        ns.push(started.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    let pct = |p: f64| ns[((ns.len() as f64 * p) as usize).min(ns.len() - 1)] as f64 / 1e6;
    (pct(0.50), pct(0.99))
}

fn main() {
    let system = build_system();
    let mut configs: Vec<(usize, f64, f64)> = Vec::new();
    let mut ingested = 0usize;
    let mut ingest_ns = 0u128;

    for target in DELTA_SIZES {
        while ingested < target {
            let xml = ingest_doc(ingested);
            let started = Instant::now();
            system.ingest_document(&xml).expect("ingest");
            ingest_ns += started.elapsed().as_nanos();
            ingested += 1;
        }
        assert_eq!(system.index().delta().doc_count(), target);
        let (p50, p99) = query_latency(&system);
        eprintln!("delta {target:>6} docs: query p50 {p50:.3} ms, p99 {p99:.3} ms");
        configs.push((target, p50, p99));
    }
    let ingest_docs_per_sec = ingested as f64 / (ingest_ns as f64 / 1e9).max(1e-9);
    eprintln!("ingest throughput: {ingest_docs_per_sec:.1} docs/s over {ingested} docs");

    // Fold the 10k delta; queries pause for the gate section only.
    let before: Vec<_> = MIX
        .iter()
        .map(|q| system.search(q, Some(K)).unwrap().answers)
        .collect();
    let report = system
        .fold_once()
        .expect("fold")
        .expect("delta was non-empty");
    assert_eq!(report.docs_folded, ingested);
    assert!(
        system.index().delta().is_empty(),
        "fold must drain the delta"
    );
    for (q, pre) in MIX.iter().zip(&before) {
        let post = system.search(q, Some(K)).unwrap().answers;
        assert_eq!(&post, pre, "answers changed across fold for {q}");
    }
    let fold_pause_ms = report.pause.as_secs_f64() * 1e3;
    let fold_wall_ms = report.wall.as_secs_f64() * 1e3;
    let (post_fold_p50, post_fold_p99) = query_latency(&system);
    eprintln!(
        "fold: {} docs in {fold_wall_ms:.1} ms wall ({fold_pause_ms:.1} ms gate pause); \
         post-fold query p50 {post_fold_p50:.3} ms, p99 {post_fold_p99:.3} ms",
        report.docs_folded
    );

    let mut sweep = String::new();
    for (i, (docs, p50, p99)) in configs.iter().enumerate() {
        if i > 0 {
            sweep.push(',');
        }
        sweep.push_str(&format!(
            "{{\"delta_docs\":{docs},\"query_p50_ms\":{p50:.4},\"query_p99_ms\":{p99:.4}}}"
        ));
    }
    let out = format!(
        "{{{},\"k\":{K},\"ingested_docs\":{ingested},\
         \"ingest_docs_per_sec\":{ingest_docs_per_sec:.1},\
         \"fold_pause_ms\":{fold_pause_ms:.4},\"fold_wall_ms\":{fold_wall_ms:.4},\
         \"post_fold_query_p50_ms\":{post_fold_p50:.4},\
         \"post_fold_query_p99_ms\":{post_fold_p99:.4},\"configs\":[{sweep}]}}",
        bench_header(Scale::small().ieee_docs, 1),
    );
    let path = store_dir().join("BENCH_ingest.json");
    std::fs::write(&path, &out).expect("write BENCH_ingest.json");
    eprintln!("wrote {}", path.display());
}
