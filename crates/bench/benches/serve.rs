//! Closed-loop HTTP serving bench, exported as `BENCH_serve.json`.
//!
//! Measures the wire path end to end — TCP connect, request framing,
//! admission queue, evaluation (or cache hit), response — the way a client
//! sees it. A fixed pool of closed-loop clients (each sends, waits for the
//! full response, then sends again) sweeps 1/8/64/256 connections against
//! the same four-query mix, once with the generation-keyed result cache on
//! and once with it off. Per config we report throughput, p50/p99 response
//! time over successful requests, and the shed rate (`429`s at the
//! admission queue; the 256-connection sweep deliberately exceeds the
//! default queue depth so shedding is exercised, not just configured).
//!
//! The cache pays for itself on the first repeat: with four distinct
//! queries every request after the first mix round is a hit, so cache-on
//! p50 must come in below cache-off p50 at the moderate concurrency
//! config (asserted).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{HttpServerConfig, TrexConfig, TrexSystem};
use trex_bench::{bench_header, store_dir, Scale};

const MIX: [&str; 4] = [
    "//article//sec[about(., xml query evaluation)]",
    "//sec[about(., code signing verification)]",
    "//article//sec[about(., model checking state space)]",
    "//article[about(., information retrieval ranking)]",
];

const CONNECTIONS: [usize; 4] = [1, 8, 64, 256];
const TOTAL_REQUESTS: usize = 1024;
const WORKERS: usize = 4;

fn build_system() -> TrexSystem {
    let path = store_dir().join("serve-bench.db");
    let _ = std::fs::remove_file(&path);
    let gen = IeeeGenerator::new(CorpusConfig {
        docs: Scale::small().ieee_docs,
        ..CorpusConfig::ieee_default()
    });
    TrexSystem::build(TrexConfig::new(&path), gen.documents()).expect("build bench collection")
}

/// One request over a fresh connection (the server is `Connection: close`).
/// Returns the status code and the response time.
fn request(addr: SocketAddr, nexi: &str) -> std::io::Result<(u16, Duration)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = format!("{{\"nexi\": {nexi:?}, \"k\": 10}}");
    let head = format!(
        "POST /v1/query HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, started.elapsed()))
}

struct ConfigResult {
    connections: usize,
    cache: bool,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    ok: u64,
    shed: u64,
    shed_rate: f64,
}

/// Runs one closed-loop sweep: `connections` clients splitting
/// `TOTAL_REQUESTS` requests (each at least one), round-robin over the mix.
fn sweep(addr: SocketAddr, connections: usize, cache: bool) -> ConfigResult {
    let per_client = (TOTAL_REQUESTS / connections).max(1);
    let shed = AtomicU64::new(0);
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let shed = &shed;
                scope.spawn(move || {
                    let mut ok = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let nexi = MIX[(c + i) % MIX.len()];
                        match request(addr, nexi) {
                            Ok((200, elapsed)) => ok.push(elapsed.as_nanos() as u64),
                            Ok((429, _)) => {
                                // Shed at the door; the next loop iteration
                                // is the closed-loop client's retry.
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok((status, _)) => panic!("unexpected status {status}"),
                            // At 256 simultaneous connects the kernel's
                            // listen backlog rejects ahead of our queue;
                            // count it with the shed — same door, earlier
                            // bouncer — and let the loop retry.
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::ConnectionReset
                                        | std::io::ErrorKind::ConnectionRefused
                                        | std::io::ErrorKind::ConnectionAborted
                                        | std::io::ErrorKind::BrokenPipe
                                ) =>
                            {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("request failed: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p) as usize).min(latencies.len() - 1);
        latencies[idx] as f64 / 1e6
    };
    let ok = latencies.len() as u64;
    let shed = shed.into_inner();
    ConfigResult {
        connections,
        cache,
        qps: ok as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        ok,
        shed,
        shed_rate: shed as f64 / (ok + shed).max(1) as f64,
    }
}

fn main() {
    let system = build_system();
    let mut results: Vec<ConfigResult> = Vec::new();

    for cache in [false, true] {
        let server = system
            .serve_http(
                "127.0.0.1:0",
                HttpServerConfig {
                    workers: WORKERS,
                    cache,
                    ..HttpServerConfig::default()
                },
            )
            .expect("start http server");
        let addr = server.addr();
        // Warm-up: page cache, dictionaries, and (when on) the result cache.
        for q in MIX {
            request(addr, q).expect("warm-up");
        }
        for connections in CONNECTIONS {
            let r = sweep(addr, connections, cache);
            eprintln!(
                "cache {} | {:>3} conns: {:>8.1} qps, p50 {:.3} ms, p99 {:.3} ms, \
                 {} ok, {} shed ({:.1}%)",
                if cache { "on " } else { "off" },
                r.connections,
                r.qps,
                r.p50_ms,
                r.p99_ms,
                r.ok,
                r.shed,
                r.shed_rate * 100.0,
            );
            results.push(r);
        }
        server.stop();
    }

    // The whole point of the cache: repeats skip evaluation. At the
    // moderate-concurrency config the cache-on p50 must beat cache-off.
    let p50_at = |cache: bool| {
        results
            .iter()
            .find(|r| r.cache == cache && r.connections == 8)
            .map(|r| r.p50_ms)
            .expect("8-connection config present")
    };
    let (off, on) = (p50_at(false), p50_at(true));
    assert!(
        on < off,
        "cache-on p50 ({on:.3} ms) must be below cache-off p50 ({off:.3} ms)"
    );
    // Admission control engaged: with 256 closed-loop clients against 4
    // workers and the default queue depth, the cache-off sweep cannot keep
    // up and must shed. (Cache-on may drain hits fast enough to never
    // saturate — that is the cache doing its job, not a missing limiter.)
    assert!(
        results
            .iter()
            .any(|r| r.connections == 256 && !r.cache && r.shed > 0),
        "the cache-off 256-connection sweep must exercise the admission queue"
    );

    let mut configs = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            configs.push(',');
        }
        configs.push_str(&format!(
            "{{\"connections\":{},\"cache\":{},\"qps\":{:.1},\"p50_ms\":{:.4},\
             \"p99_ms\":{:.4},\"ok\":{},\"shed\":{},\"shed_rate\":{:.4}}}",
            r.connections, r.cache, r.qps, r.p50_ms, r.p99_ms, r.ok, r.shed, r.shed_rate,
        ));
    }
    let out = format!(
        "{{{},\"workers\":{WORKERS},\"total_requests\":{TOTAL_REQUESTS},\
         \"cache_on_p50_ms\":{on:.4},\"cache_off_p50_ms\":{off:.4},\"configs\":[{configs}]}}",
        bench_header(Scale::small().ieee_docs, WORKERS),
    );
    let path = store_dir().join("BENCH_serve.json");
    std::fs::write(&path, &out).expect("write BENCH_serve.json");
    eprintln!("wrote {}", path.display());
}
