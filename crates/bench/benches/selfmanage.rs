//! Online self-management benches, exported as `BENCH_selfmanage.json`:
//!
//! 1. **Profiler overhead** — the workload profiler sits on the hot query
//!    path (one sorted-key hash + sharded mutex per query), so serving with
//!    it attached must stay within 5% of serving without it.
//! 2. **Workload-shift adaptation** — a two-phase query stream whose hot
//!    query changes mid-run. Synchronous reconcile cycles between batches
//!    must move the redundant lists to the new hot query: its Auto strategy
//!    crosses over from ERA to a top-k strategy (TA/Merge), and the latency
//!    trajectory records the crossover, cycle by cycle.

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{
    reconcile_once, CostCache, EvalOptions, ProfilerConfig, QueryEngine, SelfManageOptions,
    StrategyStats, TrexConfig, TrexSystem, WorkloadProfiler,
};
use trex_bench::{bench_header, median_time, ms, store_dir, Scale};

fn build_system() -> TrexSystem {
    let path = store_dir().join("selfmanage-bench.db");
    let _ = std::fs::remove_file(&path);
    let gen = IeeeGenerator::new(CorpusConfig {
        docs: Scale::small().ieee_docs,
        ..CorpusConfig::ieee_default()
    });
    TrexSystem::build(TrexConfig::new(&path), gen.documents()).expect("build bench collection")
}

const MIX: [&str; 4] = [
    "//article//sec[about(., xml query evaluation)]",
    "//sec[about(., code signing verification)]",
    "//article//sec[about(., model checking state space)]",
    "//article[about(., information retrieval ranking)]",
];

/// Serves the query mix once through `engine`; the profiler (when attached)
/// sees every query, exactly as in production serving.
fn serve_mix(engine: &QueryEngine<'_>) {
    for q in MIX {
        engine
            .evaluate(q, EvalOptions::new().k(Some(10)))
            .expect("bench query");
    }
}

/// Interleaved with/without pairs (common-mode noise cancels per pair);
/// median pair ratio asserted ≤ 1.05.
fn profiler_overhead(system: &TrexSystem) -> String {
    let bare = QueryEngine::new(system.index());
    let profiler = WorkloadProfiler::new(ProfilerConfig::default());
    let profiled = QueryEngine::new(system.index()).with_profiler(&profiler);

    serve_mix(&profiled); // warm-up: page cache, dictionaries
    let mut ratios = Vec::new();
    let (mut off, mut on) = (std::time::Duration::MAX, std::time::Duration::MAX);
    for _ in 0..7 {
        let o = median_time(3, || serve_mix(&bare));
        let w = median_time(3, || serve_mix(&profiled));
        ratios.push(w.as_secs_f64() / o.as_secs_f64().max(1e-9));
        off = off.min(o);
        on = on.min(w);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[ratios.len() / 2];
    eprintln!(
        "profiler overhead: bare {:.3} ms, profiled {:.3} ms, median pair ratio {ratio:.4} \
         ({} shapes profiled)",
        ms(off),
        ms(on),
        profiler.recorded(),
    );
    assert!(
        ratio <= 1.05,
        "profiling the query stream must cost at most 5% (ratio {ratio:.4})"
    );
    format!(
        "{{\"queries_per_batch\":{},\"bare_ms\":{:.4},\"profiled_ms\":{:.4},\"ratio\":{ratio:.4}}}",
        MIX.len(),
        ms(off),
        ms(on),
    )
}

fn strategy_name(stats: &StrategyStats) -> &'static str {
    match stats {
        StrategyStats::Era(_) => "ERA",
        StrategyStats::Ta(_) => "TA",
        StrategyStats::Merge(_) => "Merge",
        StrategyStats::Race { .. } => "Race",
        StrategyStats::Scatter { .. } => "Scatter",
    }
}

/// The mid-run workload shift: phase A hammers one query, phase B another.
/// Reconcile cycles run synchronously between batches (what the background
/// thread does on its interval), and the trajectory records, per cycle, the
/// hot query's Auto strategy and latency.
fn workload_shift(system: &TrexSystem) -> String {
    // A short half-life so the phase-B shift overtakes phase A's weight
    // within a couple of batches instead of hundreds of queries.
    let profiler = WorkloadProfiler::new(ProfilerConfig {
        half_life: Some(16),
        ..ProfilerConfig::default()
    });
    let engine = QueryEngine::new(system.index()).with_profiler(&profiler);
    let (qa, qb) = (MIX[0], MIX[2]);

    // Probe cycle with budget 0: costs (and exact list footprints) for both
    // shapes, without materialising anything. The real budget then fits one
    // query's cheaper list set — but not both — so the reconciler must
    // *move* the lists when the workload shifts, not just accumulate.
    for q in [qa, qb] {
        engine
            .evaluate(q, EvalOptions::new().k(Some(10)))
            .expect("probe query");
    }
    let probe = reconcile_once(
        system.index(),
        &profiler,
        &SelfManageOptions::new(0),
        &mut CostCache::new(),
    )
    .expect("probe cycle");
    let per_query: Vec<u64> = probe
        .costs
        .iter()
        .map(|c| c.s_rpl().min(c.s_erpl()))
        .collect();
    let budget = per_query.iter().copied().max().unwrap() * 13 / 10;
    assert!(
        budget < per_query.iter().sum::<u64>(),
        "budget {budget} must not fit both shapes at once ({per_query:?})"
    );
    let opts = SelfManageOptions::new(budget);
    let mut cache = CostCache::new();

    let mut rows = Vec::new();
    let mut crossed = [false, false];
    let mut moved = [false, false]; // phase B must drop AND materialise
    for (phase, (hot, cold)) in [(qa, qb), (qb, qa)].iter().enumerate() {
        for cycle in 0..4 {
            // The serving batch: the hot query dominates 8:1.
            for _ in 0..8 {
                engine
                    .evaluate(hot, EvalOptions::new().k(Some(10)))
                    .expect("hot query");
            }
            engine
                .evaluate(cold, EvalOptions::new().k(Some(10)))
                .expect("cold query");

            let report = reconcile_once(system.index(), &profiler, &opts, &mut cache)
                .expect("reconcile cycle");
            assert!(
                report.bytes_used <= budget,
                "cycle kept {} bytes over budget {budget}",
                report.bytes_used
            );
            if phase == 1 {
                moved[0] |= report.lists_dropped > 0;
                moved[1] |= report.lists_materialized > 0;
            }

            // Measure the hot query after the cycle settled, plus a forced
            // ERA run as the "unmanaged" reference the adaptation beats.
            let mut stats = None;
            let hot_time = median_time(3, || {
                stats = Some(
                    engine
                        .evaluate(hot, EvalOptions::new().k(Some(10)))
                        .expect("hot query post-cycle")
                        .stats,
                );
            });
            let era_time = median_time(3, || {
                engine
                    .evaluate(
                        hot,
                        EvalOptions::new().k(Some(10)).strategy(trex::Strategy::Era),
                    )
                    .expect("forced ERA reference");
            });
            let strategy = strategy_name(stats.as_ref().unwrap());
            if strategy != "ERA" {
                crossed[phase] = true;
                assert!(
                    hot_time <= era_time,
                    "adapted {strategy} ({hot_time:?}) must beat ERA ({era_time:?})"
                );
            }
            eprintln!(
                "phase {} cycle {cycle}: hot {strategy:>5} {:.3} ms (ERA {:.3} ms), \
                 +{} / -{} lists, {} bytes kept",
                ['A', 'B'][phase],
                ms(hot_time),
                ms(era_time),
                report.lists_materialized,
                report.lists_dropped,
                report.bytes_used,
            );
            rows.push(format!(
                "{{\"phase\":\"{}\",\"cycle\":{cycle},\"hot_query\":\"{}\",\"strategy\":\"{strategy}\",\
                 \"hot_ms\":{:.4},\"era_ms\":{:.4},\"lists_materialized\":{},\"lists_dropped\":{},\
                 \"bytes_used\":{}}}",
                ['A', 'B'][phase],
                trex::obs::json_escape(hot),
                ms(hot_time),
                ms(era_time),
                report.lists_materialized,
                report.lists_dropped,
                report.bytes_used,
            ));
        }
    }
    assert!(
        crossed[0] && crossed[1],
        "both phases must cross over from ERA to a top-k strategy: {crossed:?}"
    );
    assert!(
        moved[0] && moved[1],
        "the shift must move lists (dropped, materialised) = {moved:?}"
    );
    let counters = profiler.counters();
    format!(
        "{{\"budget_bytes\":{budget},\"cycles\":{},\"queries_profiled\":{},\
         \"era_fallbacks\":{},\"trajectory\":[{}]}}",
        counters.cycles.get(),
        counters.queries_profiled.get(),
        counters.era_fallbacks.get(),
        rows.join(",")
    )
}

fn main() {
    let system = build_system();
    let mut out = format!(
        "{{{},\"profiler_overhead\":",
        bench_header(Scale::small().ieee_docs, 1)
    );
    out.push_str(&profiler_overhead(&system));
    out.push_str(",\"workload_shift\":");
    out.push_str(&workload_shift(&system));
    out.push('}');

    let path = store_dir().join("BENCH_selfmanage.json");
    std::fs::write(&path, &out).expect("write BENCH_selfmanage.json");
    eprintln!("wrote {}", path.display());
}
