//! Microbenches of the storage substrate (the BerkeleyDB stand-in): B+tree
//! inserts, point lookups and range scans — the three access paths every
//! TReX table uses — plus the WAL-overhead comparison exported as
//! `BENCH_wal.json` (bulk index-build throughput with the write-ahead log
//! on versus off).

use criterion::{BenchmarkId, Criterion};

use trex::storage::{wal_path, Store, StoreOptions};
use trex_bench::{bench_header, median_time, store_dir, Scale};

fn prepared_store(n: u32) -> (Store, std::path::PathBuf) {
    let path = store_dir().join(format!("storage-bench-{n}.db"));
    let _ = std::fs::remove_file(&path);
    let store = Store::create(&path, 1024).unwrap();
    let mut table = store.create_table("t").unwrap();
    for i in 0..n {
        table
            .insert(&i.to_be_bytes(), &(i * 3).to_le_bytes())
            .unwrap();
    }
    (store, path)
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_insert");
    group.sample_size(10);
    for n in [1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| {
                let path = store_dir().join("storage-bench-insert.db");
                let _ = std::fs::remove_file(&path);
                let store = Store::create(&path, 1024).unwrap();
                let mut table = store.create_table("t").unwrap();
                for i in 0..n {
                    table.insert(&i.to_be_bytes(), b"value").unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_gets(c: &mut Criterion) {
    let (store, _path) = prepared_store(50_000);
    let table = store.open_table("t").unwrap();
    let mut group = c.benchmark_group("storage_get");
    group.sample_size(20);
    group.bench_function("point_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % 50_000;
            table.get(&i.to_be_bytes()).unwrap().unwrap()
        })
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let (store, _path) = prepared_store(50_000);
    let table = store.open_table("t").unwrap();
    let mut group = c.benchmark_group("storage_scan");
    group.sample_size(10);
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            let mut cursor = table.scan().unwrap();
            let mut n = 0u64;
            while cursor.next_entry().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, 50_000);
            n
        })
    });
    group.bench_function("seek_then_100", |b| {
        let mut start = 0u32;
        b.iter(|| {
            start = (start + 7919) % 49_000;
            let mut cursor = table.seek(&start.to_be_bytes()).unwrap();
            let mut n = 0u64;
            for _ in 0..100 {
                if cursor.next_entry().unwrap().is_none() {
                    break;
                }
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_bulk");
    group.sample_size(10);
    for n in [10_000u32, 50_000] {
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, &n| {
            b.iter(|| {
                let path = store_dir().join("storage-bench-bulk.db");
                let _ = std::fs::remove_file(&path);
                let store = Store::create(&path, 1024).unwrap();
                store
                    .create_table_bulk(
                        "t",
                        (0..n).map(|i| (i.to_be_bytes().to_vec(), b"value".to_vec())),
                    )
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            b.iter(|| {
                let path = store_dir().join("storage-bench-incr.db");
                let _ = std::fs::remove_file(&path);
                let store = Store::create(&path, 1024).unwrap();
                let mut table = store.create_table("t").unwrap();
                for i in 0..n {
                    table.insert(&i.to_be_bytes(), b"value").unwrap();
                }
            })
        });
    }
    group.finish();
}

/// One full index build (parse + tokenise + tables + final checkpoint)
/// over the small IEEE corpus, with the WAL on or off. Returns wall time
/// plus the WAL counters of the finished store.
fn index_build(docs: &[String], wal: bool) -> (std::time::Duration, u64, u64, u64) {
    let path = store_dir().join(format!("wal-bench-{}.db", if wal { "on" } else { "off" }));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path(&path));
    let started = std::time::Instant::now();
    let store = Store::create_with(
        &path,
        StoreOptions {
            pool_pages: 1024,
            wal,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let mut builder = trex::index::IndexBuilder::new(
        &store,
        trex::SummaryKind::Incoming,
        trex::AliasMap::inex_ieee(),
        trex::Analyzer::default(),
    )
    .unwrap();
    for doc in docs {
        builder.add_document(doc).unwrap();
    }
    builder.finish().unwrap();
    let elapsed = started.elapsed();
    let counters = store.counters().snapshot();
    (
        elapsed,
        counters.wal_appends,
        counters.wal_bytes,
        counters.checkpoints,
    )
}

/// Measures bulk index-build throughput WAL-on vs WAL-off and renders the
/// `BENCH_wal.json` payload. The WAL must stay within 25% of the WAL-off
/// build (the log adds one sequential write + CRC per page, amortised
/// against parse/tokenise work).
fn wal_overhead() -> String {
    // 2× the smoke-test scale: long enough that the checkpoint's constant
    // fsync cost amortises and scheduling jitter stays well under the
    // ~10-17% real overhead being measured.
    let gen = trex::corpus::IeeeGenerator::new(trex::corpus::CorpusConfig {
        docs: Scale::small().ieee_docs * 2,
        ..trex::corpus::CorpusConfig::ieee_default()
    });
    let docs: Vec<String> = gen.documents().collect();

    // Warm-up build (page cache, allocator), then interleaved off/on pairs.
    // Adjacent runs of a pair see the same background load, so the per-pair
    // ratio cancels common-mode noise; the median pair ratio is then robust
    // to the occasional fsync-latency outlier that skews any single run.
    let _ = index_build(&docs, true);
    let mut off = std::time::Duration::MAX;
    let mut on = std::time::Duration::MAX;
    let mut ratios = Vec::new();
    for _ in 0..6 {
        let o = median_time(1, || index_build(&docs, false));
        let w = median_time(1, || index_build(&docs, true));
        ratios.push(w.as_secs_f64() / o.as_secs_f64().max(1e-9));
        off = off.min(o);
        on = on.min(w);
    }
    let (_, wal_appends, wal_bytes, checkpoints) = index_build(&docs, true);

    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[ratios.len() / 2];
    eprintln!(
        "wal overhead: off {:.1} ms, on {:.1} ms, median pair ratio {ratio:.3} \
         ({wal_appends} appends, {wal_bytes} bytes, {checkpoints} checkpoints)",
        off.as_secs_f64() * 1e3,
        on.as_secs_f64() * 1e3,
    );
    assert!(
        ratio <= 1.25,
        "WAL-on bulk index build must stay within 25% of WAL-off (ratio {ratio:.3})"
    );
    format!(
        "{{\"docs\":{},\"wal_off_ms\":{:.3},\"wal_on_ms\":{:.3},\"ratio\":{ratio:.4},\
         \"wal_appends\":{wal_appends},\"wal_bytes\":{wal_bytes},\"checkpoints\":{checkpoints}}}",
        docs.len(),
        off.as_secs_f64() * 1e3,
        on.as_secs_f64() * 1e3,
    )
}

/// Runs every storage group, then the WAL on/off comparison, and writes
/// `BENCH_wal.json` with both (same export pattern as the strategies
/// bench's `BENCH_trace.json`).
fn main() {
    let mut criterion = Criterion::default();
    bench_inserts(&mut criterion);
    bench_gets(&mut criterion);
    bench_scans(&mut criterion);
    bench_bulk_load(&mut criterion);

    let mut out = format!(
        "{{{},\"benches\":[",
        bench_header(Scale::small().ieee_docs * 2, 1)
    );
    for (i, r) in criterion.results().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"min_us\":{},\"median_us\":{},\"mean_us\":{},\"samples\":{}}}",
            trex::obs::json_escape(&r.name),
            r.min.as_micros(),
            r.median.as_micros(),
            r.mean.as_micros(),
            r.samples
        ));
    }
    out.push_str("],\"wal_overhead\":");
    out.push_str(&wal_overhead());
    out.push('}');

    let path = store_dir().join("BENCH_wal.json");
    std::fs::write(&path, &out).expect("write BENCH_wal.json");
    eprintln!("wrote {}", path.display());
}
