//! Microbenches of the storage substrate (the BerkeleyDB stand-in): B+tree
//! inserts, point lookups and range scans — the three access paths every
//! TReX table uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trex::storage::Store;
use trex_bench::store_dir;

fn prepared_store(n: u32) -> (Store, std::path::PathBuf) {
    let path = store_dir().join(format!("storage-bench-{n}.db"));
    let _ = std::fs::remove_file(&path);
    let store = Store::create(&path, 1024).unwrap();
    let mut table = store.create_table("t").unwrap();
    for i in 0..n {
        table
            .insert(&i.to_be_bytes(), &(i * 3).to_le_bytes())
            .unwrap();
    }
    (store, path)
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_insert");
    group.sample_size(10);
    for n in [1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| {
                let path = store_dir().join("storage-bench-insert.db");
                let _ = std::fs::remove_file(&path);
                let store = Store::create(&path, 1024).unwrap();
                let mut table = store.create_table("t").unwrap();
                for i in 0..n {
                    table.insert(&i.to_be_bytes(), b"value").unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_gets(c: &mut Criterion) {
    let (store, _path) = prepared_store(50_000);
    let table = store.open_table("t").unwrap();
    let mut group = c.benchmark_group("storage_get");
    group.sample_size(20);
    group.bench_function("point_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % 50_000;
            table.get(&i.to_be_bytes()).unwrap().unwrap()
        })
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let (store, _path) = prepared_store(50_000);
    let table = store.open_table("t").unwrap();
    let mut group = c.benchmark_group("storage_scan");
    group.sample_size(10);
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            let mut cursor = table.scan().unwrap();
            let mut n = 0u64;
            while cursor.next_entry().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, 50_000);
            n
        })
    });
    group.bench_function("seek_then_100", |b| {
        let mut start = 0u32;
        b.iter(|| {
            start = (start + 7919) % 49_000;
            let mut cursor = table.seek(&start.to_be_bytes()).unwrap();
            let mut n = 0u64;
            for _ in 0..100 {
                if cursor.next_entry().unwrap().is_none() {
                    break;
                }
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_bulk");
    group.sample_size(10);
    for n in [10_000u32, 50_000] {
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, &n| {
            b.iter(|| {
                let path = store_dir().join("storage-bench-bulk.db");
                let _ = std::fs::remove_file(&path);
                let store = Store::create(&path, 1024).unwrap();
                store
                    .create_table_bulk(
                        "t",
                        (0..n).map(|i| (i.to_be_bytes().to_vec(), b"value".to_vec())),
                    )
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            b.iter(|| {
                let path = store_dir().join("storage-bench-incr.db");
                let _ = std::fs::remove_file(&path);
                let store = Store::create(&path, 1024).unwrap();
                let mut table = store.create_table("t").unwrap();
                for i in 0..n {
                    table.insert(&i.to_be_bytes(), b"value").unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_gets,
    bench_scans,
    bench_bulk_load
);
criterion_main!(benches);
