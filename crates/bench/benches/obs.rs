//! Telemetry overhead bench, exported as `BENCH_obs.json`.
//!
//! The histograms and the span journal are designed to stay on in
//! production: a paused timer group skips the clock reads entirely
//! (`Stopwatch(None)`), so the registry's pause switch gives a true
//! telemetry-off baseline on the very same system. Serving with telemetry
//! on must stay within 5% of serving with it paused.
//!
//! Methodology (same as the selfmanage bench's profiler-overhead check):
//! interleaved off/on pairs so common-mode noise — cache state, CPU
//! frequency, neighbours — cancels per pair, then the median pair ratio is
//! asserted ≤ 1.05.

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{EvalOptions, QueryEngine, TrexConfig, TrexSystem};
use trex_bench::{bench_header, median_time, ms, store_dir, Scale};

const MIX: [&str; 4] = [
    "//article//sec[about(., xml query evaluation)]",
    "//sec[about(., code signing verification)]",
    "//article//sec[about(., model checking state space)]",
    "//article[about(., information retrieval ranking)]",
];

fn build_system() -> TrexSystem {
    let path = store_dir().join("obs-bench.db");
    let _ = std::fs::remove_file(&path);
    let gen = IeeeGenerator::new(CorpusConfig {
        docs: Scale::small().ieee_docs,
        ..CorpusConfig::ieee_default()
    });
    TrexSystem::build(TrexConfig::new(&path), gen.documents()).expect("build bench collection")
}

fn serve_mix(engine: &QueryEngine<'_>) {
    for q in MIX {
        engine
            .evaluate(q, EvalOptions::new().k(Some(10)))
            .expect("bench query");
    }
}

fn main() {
    let system = build_system();
    let registry = system.metrics();
    let engine = QueryEngine::new(system.index());

    serve_mix(&engine); // warm-up: page cache, dictionaries

    let mut ratios = Vec::new();
    let (mut off, mut on) = (std::time::Duration::MAX, std::time::Duration::MAX);
    for _ in 0..7 {
        registry.set_telemetry_enabled(false);
        let o = median_time(3, || serve_mix(&engine));
        registry.set_telemetry_enabled(true);
        let w = median_time(3, || serve_mix(&engine));
        ratios.push(w.as_secs_f64() / o.as_secs_f64().max(1e-9));
        off = off.min(o);
        on = on.min(w);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[ratios.len() / 2];

    // Sanity: the on-halves really recorded — end-to-end latencies landed
    // in the query histogram and the journal holds span events.
    let latency = registry.telemetry().query.query.snapshot();
    assert!(
        latency.count() >= 7 * 3 * MIX.len() as u64,
        "telemetry-on rounds must populate the query histogram (count {})",
        latency.count()
    );
    let events = registry.telemetry().journal.snapshot();
    assert!(!events.is_empty(), "telemetry-on rounds must journal spans");

    eprintln!(
        "telemetry overhead: paused {:.3} ms, on {:.3} ms, median pair ratio {ratio:.4}; \
         query p50 {:.3} ms p99 {:.3} ms over {} recorded",
        ms(off),
        ms(on),
        latency.percentile(0.50) as f64 / 1e6,
        latency.percentile(0.99) as f64 / 1e6,
        latency.count(),
    );
    assert!(
        ratio <= 1.05,
        "always-on histograms + spans must cost at most 5% (ratio {ratio:.4})"
    );

    let out = format!(
        "{{{},\"telemetry_overhead\":{{\"queries_per_batch\":{},\"paused_ms\":{:.4},\
         \"on_ms\":{:.4},\"ratio\":{ratio:.4},\"recorded\":{},\"p50_ms\":{:.4},\
         \"p99_ms\":{:.4},\"span_events\":{}}}}}",
        bench_header(Scale::small().ieee_docs, 1),
        MIX.len(),
        ms(off),
        ms(on),
        latency.count(),
        latency.percentile(0.50) as f64 / 1e6,
        latency.percentile(0.99) as f64 / 1e6,
        events.len(),
    );
    let path = store_dir().join("BENCH_obs.json");
    std::fs::write(&path, &out).expect("write BENCH_obs.json");
    eprintln!("wrote {}", path.display());
}
