//! Partition scaling sweep: the IEEE paper-query batch evaluated over
//! 1 / 2 / 4 partition stores at 1 / 4 / 8 executor threads, against the
//! single-store system as the baseline. Writes `BENCH_partition.json`.
//!
//! Three properties are checked on every run, at every partition count:
//!
//! 1. **Byte identity** — every query's answer list equals the
//!    single-store baseline's exactly (same docs, same spans, same f32
//!    scores, same order).
//! 2. **Exact decode accounting** — under ERA each posting is decoded
//!    once, in exactly one partition, so per-partition `posting_entries`
//!    totals must sum to the baseline's total. (Page fetches are recorded
//!    per partition but not asserted equal: differently-packed B+trees
//!    fetch different page counts for identical decoded work.)
//! 3. **Throughput** — the ≥2× speedup target at 4 partitions is asserted
//!    only when the host has ≥4 cores to scale onto; measured speedups are
//!    always exported.

use std::time::{Duration, Instant};

use trex::corpus::{Collection, PAPER_QUERIES};
use trex::{Answer, EvalOptions, Strategy};
use trex_bench::{bench_header, build_collection, build_partitioned_collection, store_dir, Scale};

const BATCH: usize = 48;
const ITERS: usize = 3;

fn main() {
    let docs = Scale::small().ieee_docs;
    let single = build_collection(Collection::Ieee, docs, true);
    let queries: Vec<&str> = PAPER_QUERIES
        .iter()
        .filter(|q| q.collection == Collection::Ieee)
        .map(|q| q.nexi)
        .collect();
    let batch: Vec<&str> = queries.iter().cycle().take(BATCH).copied().collect();
    // ERA everywhere: deterministic exhaustive decodes give the exact
    // accounting invariant, and need no materialized redundant lists.
    let opts = EvalOptions::new().k(10).strategy(Strategy::Era);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Single-store baseline: answers for identity, posting decodes for
    // accounting, serial wall clock for speedups.
    let engine = single.engine();
    let baseline: Vec<Vec<Answer>> = queries
        .iter()
        .map(|q| engine.evaluate(q, opts).expect("baseline query").answers)
        .collect();
    let index_counters = single.index().counters();
    let entries_before = index_counters.snapshot();
    let mut baseline_best = Duration::MAX;
    for _ in 0..ITERS {
        let start = Instant::now();
        for q in &batch {
            engine.evaluate(q, opts).expect("baseline batch query");
        }
        baseline_best = baseline_best.min(start.elapsed());
    }
    // One batch worth of decodes: the ITERS runs repeat identical work.
    let baseline_entries = index_counters
        .snapshot()
        .delta(&entries_before)
        .posting_entries
        / ITERS as u64;

    let mut out = format!(
        "{{{},\"batch\":{BATCH},\"iters\":{ITERS},\"cores\":{cores},\
         \"strategy\":\"era\",\"baseline_best_us\":{},\
         \"baseline_posting_entries\":{baseline_entries},\"sweep\":[",
        bench_header(docs, 8),
        baseline_best.as_micros()
    );
    let mut accounting = String::new();
    let mut first_row = true;

    for (pi, &partitions) in [1usize, 2, 4].iter().enumerate() {
        let parted = build_partitioned_collection(Collection::Ieee, docs, partitions, true);
        let system = parted.system();

        // 1. Byte identity against the single-store baseline.
        for (q, want) in queries.iter().zip(&baseline) {
            let got = system.evaluate(q, opts).expect("partitioned query");
            assert_eq!(
                want, &got.answers,
                "answers diverge from single-store baseline at {partitions} partitions: {q}"
            );
        }

        // 2. Exact decode accounting over one batch.
        let before: Vec<_> = system
            .parts()
            .iter()
            .map(|p| {
                (
                    p.index().store().counters().snapshot(),
                    p.index().counters().snapshot(),
                )
            })
            .collect();
        for q in &batch {
            system.evaluate(q, opts).expect("accounting query");
        }
        let mut entries_total = 0u64;
        let mut parts_json = String::new();
        for (i, (part, (sb, ib))) in system.parts().iter().zip(&before).enumerate() {
            let sd = part.index().store().counters().snapshot().delta(sb);
            let id = part.index().counters().snapshot().delta(ib);
            entries_total += id.posting_entries;
            if i > 0 {
                parts_json.push(',');
            }
            parts_json.push_str(&format!(
                "{{\"partition\":{i},\"page_fetches\":{},\"posting_entries\":{}}}",
                sd.pool_hits + sd.pool_misses,
                id.posting_entries
            ));
        }
        assert_eq!(
            entries_total, baseline_entries,
            "{partitions}-partition posting decodes must sum exactly to the baseline total"
        );
        if pi > 0 {
            accounting.push(',');
        }
        accounting.push_str(&format!(
            "{{\"partitions\":{partitions},\"posting_entries_total\":{entries_total},\
             \"per_partition\":[{parts_json}]}}"
        ));

        // 3. Throughput sweep: executor threads × this partition count.
        let mut best_speedup = 0.0f64;
        for &threads in &[1usize, 4, 8] {
            let mut best = Duration::MAX;
            for _ in 0..ITERS {
                let start = Instant::now();
                for r in system.evaluate_batch(&batch, opts, threads) {
                    r.expect("sweep query");
                }
                best = best.min(start.elapsed());
            }
            let qps = BATCH as f64 / best.as_secs_f64();
            let speedup = baseline_best.as_secs_f64() / best.as_secs_f64();
            best_speedup = best_speedup.max(speedup);
            if !first_row {
                out.push(',');
            }
            first_row = false;
            out.push_str(&format!(
                "{{\"partitions\":{partitions},\"threads\":{threads},\"best_us\":{},\
                 \"queries_per_sec\":{qps:.1},\"speedup\":{speedup:.3}}}",
                best.as_micros()
            ));
        }
        if partitions == 4 && cores >= 4 {
            assert!(
                best_speedup >= 2.0,
                "4-partition speedup {best_speedup:.2}x below the 2x target on {cores} cores"
            );
        }
    }

    out.push_str(&format!("],\"accounting\":[{accounting}]}}"));
    let path = store_dir().join("BENCH_partition.json");
    std::fs::write(&path, &out).expect("write BENCH_partition.json");
    eprintln!("wrote {}", path.display());
}
