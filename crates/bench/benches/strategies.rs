//! Criterion benches regenerating the Figures 4–6 measurements: one group
//! per paper figure panel (query), benchmarking ERA, Merge, TA and ITA-proxy
//! at representative k values.
//!
//! These run at [`Scale::small`] so `cargo bench` completes quickly; the
//! `experiments` binary runs the full sweep at the default scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trex::corpus::{Collection, PAPER_QUERIES};
use trex::{EvalOptions, ListKind, Strategy, TrexSystem};
use trex_bench::{build_collection, Scale};

fn system(collection: Collection) -> TrexSystem {
    let scale = Scale::small();
    let docs = match collection {
        Collection::Ieee => scale.ieee_docs,
        Collection::Wiki => scale.wiki_docs,
    };
    build_collection(collection, docs, true)
}

fn figure_group(c: &mut Criterion, figure: &str, query_id: u32) {
    let q = trex::corpus::paper_query(query_id).expect("known query");
    let sys = system(q.collection);
    sys.materialize_for(q.nexi, ListKind::Both).expect("materialize");
    let engine = sys.engine();
    let translation = engine.translate(q.nexi, Default::default()).expect("translate");
    let total = engine
        .evaluate_translated(
            translation.clone(),
            EvalOptions {
                k: None,
                strategy: Strategy::Era,
                ..Default::default()
            },
        )
        .expect("era")
        .total_answers
        .max(1);

    let mut group = c.benchmark_group(format!("{figure}_q{query_id}"));
    group.sample_size(10);

    group.bench_function("era_all", |b| {
        b.iter(|| {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions {
                        k: None,
                        strategy: Strategy::Era,
                        ..Default::default()
                    },
                )
                .unwrap()
        })
    });
    group.bench_function("merge_all", |b| {
        b.iter(|| {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions {
                        k: None,
                        strategy: Strategy::Merge,
                        ..Default::default()
                    },
                )
                .unwrap()
        })
    });
    for k in [1usize, 10, total] {
        group.bench_with_input(BenchmarkId::new("ta", k), &k, |b, &k| {
            b.iter(|| {
                engine
                    .evaluate_translated(
                        translation.clone(),
                        EvalOptions {
                            k: Some(k),
                            strategy: Strategy::Ta,
                            measure_heap: false,
                            ..Default::default()
                        },
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn fig4(c: &mut Criterion) {
    figure_group(c, "fig4", 202);
    figure_group(c, "fig4", 203);
}

fn fig5(c: &mut Criterion) {
    figure_group(c, "fig5", 260);
    figure_group(c, "fig5", 270);
}

fn fig6(c: &mut Criterion) {
    figure_group(c, "fig6", 233);
    figure_group(c, "fig6", 290);
    figure_group(c, "fig6", 292);
}

/// Table 1 regeneration as a bench (translation + exhaustive evaluation).
fn table1(c: &mut Criterion) {
    let ieee = system(Collection::Ieee);
    let wiki = system(Collection::Wiki);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for q in PAPER_QUERIES {
        let sys = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        group.bench_function(BenchmarkId::new("era_all", q.id), |b| {
            b.iter(|| sys.search_with(q.nexi, None, Strategy::Era).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, fig4, fig5, fig6, table1);
criterion_main!(benches);
