//! Criterion benches regenerating the Figures 4–6 measurements: one group
//! per paper figure panel (query), benchmarking ERA, Merge, TA and ITA-proxy
//! at representative k values.
//!
//! These run at [`Scale::small`] so `cargo bench` completes quickly; the
//! `experiments` binary runs the full sweep at the default scale.

use std::time::{Duration, Instant};

use criterion::{BenchmarkId, Criterion};

use trex::corpus::{Collection, PAPER_QUERIES};
use trex::{EvalOptions, ListKind, Strategy, ToJson, TrexSystem, TA_PREDICTION_FACTOR};
use trex_bench::{bench_header, build_collection, build_partitioned_collection, store_dir, Scale};

fn system(collection: Collection) -> TrexSystem {
    let scale = Scale::small();
    let docs = match collection {
        Collection::Ieee => scale.ieee_docs,
        Collection::Wiki => scale.wiki_docs,
    };
    build_collection(collection, docs, true)
}

fn figure_group(c: &mut Criterion, figure: &str, query_id: u32) {
    let q = trex::corpus::paper_query(query_id).expect("known query");
    let sys = system(q.collection);
    sys.materialize_for(q.nexi, ListKind::Both)
        .expect("materialize");
    let engine = sys.engine();
    let translation = engine
        .translate(q.nexi, Default::default())
        .expect("translate");
    let total = engine
        .evaluate_translated(
            translation.clone(),
            EvalOptions::new().strategy(Strategy::Era),
        )
        .expect("era")
        .total_answers
        .max(1);

    let mut group = c.benchmark_group(format!("{figure}_q{query_id}"));
    group.sample_size(10);

    group.bench_function("era_all", |b| {
        b.iter(|| {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().strategy(Strategy::Era),
                )
                .unwrap()
        })
    });
    group.bench_function("merge_all", |b| {
        b.iter(|| {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().strategy(Strategy::Merge),
                )
                .unwrap()
        })
    });
    for k in [1usize, 10, total] {
        group.bench_with_input(BenchmarkId::new("ta", k), &k, |b, &k| {
            b.iter(|| {
                engine
                    .evaluate_translated(
                        translation.clone(),
                        EvalOptions::new().k(k).strategy(Strategy::Ta),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn fig4(c: &mut Criterion) {
    figure_group(c, "fig4", 202);
    figure_group(c, "fig4", 203);
}

fn fig5(c: &mut Criterion) {
    figure_group(c, "fig5", 260);
    figure_group(c, "fig5", 270);
}

fn fig6(c: &mut Criterion) {
    figure_group(c, "fig6", 233);
    figure_group(c, "fig6", 290);
    figure_group(c, "fig6", 292);
}

/// Table 1 regeneration as a bench (translation + exhaustive evaluation).
fn table1(c: &mut Criterion) {
    let ieee = system(Collection::Ieee);
    let wiki = system(Collection::Wiki);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for q in PAPER_QUERIES {
        let sys = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        group.bench_function(BenchmarkId::new("era_all", q.id), |b| {
            b.iter(|| sys.search_with(q.nexi, None, Strategy::Era).unwrap())
        });
    }
    group.finish();
}

/// Thread-scaling sweep of the batch executor: the IEEE paper queries,
/// repeated into a 48-query batch, evaluated at 1/2/4/8 worker threads over
/// a warm cache. Reports best-of-three wall clock and derived throughput,
/// and checks the sharded pool's exact accounting: per-shard counter deltas
/// must sum to the pool-level deltas, and every thread count must perform
/// the same total number of page fetches as the single-thread run (the
/// batch does identical work regardless of parallelism).
///
/// Writes `BENCH_concurrency.json`. The ≥2.5× four-thread speedup target
/// is asserted only when the host actually has four cores to scale onto;
/// the measured speedups are always recorded in the export.
fn concurrency_sweep() -> String {
    const BATCH: usize = 48;
    const ITERS: usize = 3;

    let sys = system(Collection::Ieee);
    let queries: Vec<&str> = PAPER_QUERIES
        .iter()
        .filter(|q| q.collection == Collection::Ieee)
        .map(|q| q.nexi)
        .collect();
    for q in &queries {
        sys.materialize_for(q, ListKind::Both).expect("materialize");
    }
    let batch: Vec<&str> = queries.iter().cycle().take(BATCH).copied().collect();
    let opts = EvalOptions::new().k(10);

    // Warm the cache so every sweep pass does identical, read-only work.
    for r in sys.executor().threads(1).evaluate_batch(&batch, opts) {
        r.expect("warmup query");
    }

    // The 1-in-16 drift sampler reads per-list registry stats on whichever
    // Ta/Merge queries its global round-robin lands on — a handful of extra
    // page fetches that land on interleaving-dependent queries and would
    // break the exact fetch-parity assertion below. Sampling is orthogonal
    // to query work; switch it off for the accounting sweep.
    let drift = &sys.index().telemetry().drift;
    drift.set_sample_every(0);

    let pool = sys.index().store().pool();
    let storage = sys.index().store().counters();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut out = format!("{{{},\"batch\":", bench_header(Scale::small().ieee_docs, 8));
    out.push_str(&format!(
        "{BATCH},\"iters\":{ITERS},\"cores\":{cores},\"shards\":{},\"sweep\":[",
        pool.shard_count()
    ));

    let mut single_best = Duration::ZERO;
    let mut single_fetches = 0u64;
    for (i, &threads) in [1usize, 2, 4, 8].iter().enumerate() {
        let executor = sys.executor().threads(threads);
        let before = storage.snapshot();
        let shards_before = pool.shard_counters();
        let mut best = Duration::MAX;
        for _ in 0..ITERS {
            let start = Instant::now();
            for r in executor.evaluate_batch(&batch, opts) {
                r.expect("sweep query");
            }
            best = best.min(start.elapsed());
        }
        let delta = storage.snapshot().delta(&before);
        let shard_deltas: Vec<_> = pool
            .shard_counters()
            .iter()
            .zip(&shards_before)
            .map(|(now, then)| now.delta(then))
            .collect();

        // Exact accounting: no cache event is lost under any thread count.
        let shard_hits: u64 = shard_deltas.iter().map(|s| s.hits).sum();
        let shard_misses: u64 = shard_deltas.iter().map(|s| s.misses).sum();
        assert_eq!(shard_hits, delta.pool_hits, "{threads} threads: shard hits");
        assert_eq!(
            shard_misses, delta.pool_misses,
            "{threads} threads: shard misses"
        );
        let fetches = delta.pool_hits + delta.pool_misses;
        if threads == 1 {
            single_best = best;
            single_fetches = fetches;
        } else {
            assert_eq!(
                fetches, single_fetches,
                "{threads} threads did different work than single-thread"
            );
        }

        let qps = BATCH as f64 / best.as_secs_f64();
        let speedup = single_best.as_secs_f64() / best.as_secs_f64();
        if threads == 4 && cores >= 4 {
            assert!(
                speedup >= 2.5,
                "4-thread batch speedup {speedup:.2}x below the 2.5x target on {cores} cores"
            );
        }
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"threads\":{threads},\"best_us\":{},\"queries_per_sec\":{qps:.1},\
             \"speedup\":{speedup:.3},\"page_fetches\":{fetches}}}",
            best.as_micros()
        ));
    }
    out.push(']');

    // Per-partition accounting: the same batch forced through ERA over a
    // 2-partition build of the same corpus, against a single-store ERA run
    // as the baseline. ERA decodes every posting of every translated term
    // exactly once, and routing puts each posting in exactly one
    // partition, so the per-partition `posting_entries` deltas must sum
    // *exactly* to the single-store total — that is the workload-equality
    // assertion. Page fetches are recorded per partition as well (each
    // partition's own pool accounts them), but their sum is reported, not
    // asserted against the baseline: two half-size B+trees pack pages
    // differently than one big one, so fetch counts legitimately differ
    // even though the decoded work is identical.
    let era = EvalOptions::new().k(10).strategy(Strategy::Era);
    let single_index = sys.index().counters();
    let fetch_before = storage.snapshot();
    let entries_before = single_index.snapshot();
    for q in &batch {
        sys.engine().evaluate(q, era).expect("single-store era");
    }
    let fetch_delta = storage.snapshot().delta(&fetch_before);
    let single_fetches_era = fetch_delta.pool_hits + fetch_delta.pool_misses;
    let single_entries = single_index
        .snapshot()
        .delta(&entries_before)
        .posting_entries;

    let parted = build_partitioned_collection(Collection::Ieee, Scale::small().ieee_docs, 2, true);
    let before: Vec<_> = parted
        .system()
        .parts()
        .iter()
        .map(|p| {
            (
                p.index().store().counters().snapshot(),
                p.index().counters().snapshot(),
            )
        })
        .collect();
    for q in &batch {
        parted.system().evaluate(q, era).expect("partitioned era");
    }
    let mut per_part = Vec::new();
    let mut entries_sum = 0u64;
    let mut fetches_sum = 0u64;
    for (part, (sb, ib)) in parted.system().parts().iter().zip(&before) {
        let sd = part.index().store().counters().snapshot().delta(sb);
        let id = part.index().counters().snapshot().delta(ib);
        let fetches = sd.pool_hits + sd.pool_misses;
        entries_sum += id.posting_entries;
        fetches_sum += fetches;
        per_part.push((fetches, id.posting_entries));
    }
    assert_eq!(
        entries_sum, single_entries,
        "per-partition posting decodes must sum exactly to the single-store total"
    );
    out.push_str(&format!(
        ",\"partitioned\":{{\"partitions\":2,\"strategy\":\"era\",\
         \"single_page_fetches\":{single_fetches_era},\
         \"single_posting_entries\":{single_entries},\
         \"page_fetches_total\":{fetches_sum},\
         \"posting_entries_total\":{entries_sum},\"per_partition\":["
    ));
    for (i, (fetches, entries)) in per_part.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"partition\":{i},\"page_fetches\":{fetches},\"posting_entries\":{entries}}}"
        ));
    }
    out.push_str("]}}");
    out
}

/// Runs every group on one `Criterion` so the recorded results can be
/// exported, then writes `BENCH_trace.json`: the bench timings, a traced
/// run of each figure query, and the measured-versus-predicted cost-model
/// validation.
fn main() {
    let mut criterion = Criterion::default();
    fig4(&mut criterion);
    fig5(&mut criterion);
    fig6(&mut criterion);
    table1(&mut criterion);

    let mut out = format!(
        "{{{},\"benches\":[",
        bench_header(Scale::small().ieee_docs, 1)
    );
    for (i, r) in criterion.results().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"min_us\":{},\"median_us\":{},\"mean_us\":{},\"samples\":{}}}",
            trex::obs::json_escape(&r.name),
            r.min.as_micros(),
            r.median.as_micros(),
            r.mean.as_micros(),
            r.samples
        ));
    }
    out.push_str("],\"traces\":[");

    let mut first = true;
    for &query_id in &[202u32, 260, 233] {
        let q = trex::corpus::paper_query(query_id).expect("known query");
        let sys = system(q.collection);
        sys.materialize_for(q.nexi, ListKind::Both)
            .expect("materialize");
        let engine = sys.engine();
        for strategy in [Strategy::Ta, Strategy::Merge] {
            let result = engine
                .evaluate(
                    q.nexi,
                    EvalOptions::new().k(10).strategy(strategy).trace(true),
                )
                .expect("traced run");
            let trace = result.trace.expect("trace requested");
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{{\"query\":{query_id},\"trace\":"));
            trace.write_json(&mut out);
            out.push('}');
        }

        // Measured vs predicted §4 access counts; the ratio must be finite
        // and within the documented factor or the bench itself fails.
        let validations = engine.validate_costs(q.nexi, 10).expect("cost validation");
        for v in &validations {
            assert!(
                v.ratio().is_finite() && v.within_factor(TA_PREDICTION_FACTOR),
                "query {query_id} {}: measured {} vs predicted {} outside factor {TA_PREDICTION_FACTOR}",
                v.strategy,
                v.measured,
                v.predicted
            );
        }
        out.push_str(",{\"query\":");
        out.push_str(&query_id.to_string());
        out.push_str(",\"cost_validation\":[");
        for (i, v) in validations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(&mut out);
        }
        out.push_str("]}");
    }
    out.push_str("]}");

    let path = store_dir().join("BENCH_trace.json");
    std::fs::write(&path, &out).expect("write BENCH_trace.json");
    println!("\nwrote {} ({} bytes)", path.display(), out.len());

    let sweep = concurrency_sweep();
    let path = store_dir().join("BENCH_concurrency.json");
    std::fs::write(&path, &sweep).expect("write BENCH_concurrency.json");
    println!("wrote {} ({} bytes)", path.display(), sweep.len());
}
