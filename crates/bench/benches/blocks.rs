//! Block-layout benchmark: measures what the block-compressed RPL/ERPL
//! storage buys over the seed one-record-per-entry layout on the bundled
//! IEEE corpus, and proves it changes nothing semantically — ERA, TA and
//! Merge answers stay identical and the §4 cost validations still hold.
//! Writes `BENCH_blocks.json`:
//!
//! - compression: registry-reported bytes of every materialised list under
//!   the block layout vs the same lists priced at the seed layout
//!   (20-byte-key record per RPL entry, 16+4 per ERPL entry). The bench
//!   *asserts* the ≥2× reduction for both tables.
//! - decode throughput: full-scan entries/second through the lazy block
//!   iterators, including skip-header parsing.
//! - per-query answer equivalence across strategies and the
//!   measured-vs-predicted cost records (entry- and block-level).

use std::time::Instant;

use trex::corpus::{Collection, PAPER_QUERIES};
use trex::index::blocks::{seed_erpl_list_bytes, seed_rpl_list_bytes};
use trex::{Answer, ElementRef, EvalOptions, ListKind, Strategy, TrexSystem, TA_PREDICTION_FACTOR};
use trex_bench::{bench_header, build_collection, median_time, store_dir, Scale};

fn ieee_queries() -> Vec<&'static str> {
    PAPER_QUERIES
        .iter()
        .filter(|q| q.collection == Collection::Ieee)
        .map(|q| q.nexi)
        .collect()
}

/// Same ranking, same scores — the equivalence contract the strategy tests
/// enforce, re-checked here on the block-backed store.
fn assert_same_ranking(a: &[Answer], b: &[Answer], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.element, y.element, "{label}: rank {i} element differs");
        assert_eq!(x.sid, y.sid, "{label}: rank {i} sid differs");
        assert!(
            (x.score - y.score).abs() <= 1e-4 * x.score.abs().max(1.0),
            "{label}: rank {i} score {} vs {}",
            x.score,
            y.score
        );
    }
}

/// Registry-reported block-layout footprint vs the seed layout priced over
/// the *same* entry lists. Returns `(seed_bytes, block_bytes, blocks,
/// entries)` per table.
struct TableFootprint {
    seed_bytes: u64,
    block_bytes: u64,
    blocks: u64,
    entries: u64,
}

fn footprints(sys: &TrexSystem) -> (TableFootprint, TableFootprint) {
    let index = sys.index();
    let erpls = index.erpls().expect("erpls");
    let rpls = index.rpls().expect("rpls");

    let mut rpl = TableFootprint {
        seed_bytes: 0,
        block_bytes: 0,
        blocks: 0,
        entries: 0,
    };
    let mut erpl = TableFootprint {
        seed_bytes: 0,
        block_bytes: 0,
        blocks: 0,
        entries: 0,
    };

    // Every materialised pair: the ERPL iterator recovers the entry list
    // (the same scored elements both tables store), which prices the seed
    // layout; the registry already holds the block layout's exact bytes.
    for (term, sid, stats) in erpls.lists().expect("erpl registry") {
        let mut it = erpls.iter_list(term, sid).expect("erpl iter");
        let mut entries: Vec<(ElementRef, f32)> = Vec::with_capacity(stats.entries as usize);
        while let Some(e) = it.next_entry().expect("erpl entry") {
            entries.push((e.element, e.score));
        }
        assert_eq!(entries.len() as u64, stats.entries, "registry entry count");
        erpl.seed_bytes += seed_erpl_list_bytes(&entries);
        erpl.block_bytes += stats.bytes;
        erpl.blocks += stats.blocks;
        erpl.entries += stats.entries;
        if let Some(rstats) = rpls.list_stats(term, sid).expect("rpl stats") {
            rpl.seed_bytes += seed_rpl_list_bytes(&entries);
            rpl.block_bytes += rstats.bytes;
            rpl.blocks += rstats.blocks;
            rpl.entries += rstats.entries;
        }
    }
    (rpl, erpl)
}

/// Full-scan decode throughput through the block iterators: every RPL
/// entry of every materialised term, timed.
fn decode_throughput(sys: &TrexSystem) -> (u64, f64) {
    let index = sys.index();
    let rpls = index.rpls().expect("rpls");
    let terms: Vec<u32> = {
        let mut t: Vec<u32> = rpls
            .lists()
            .expect("registry")
            .into_iter()
            .map(|(term, _, _)| term)
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let mut total = 0u64;
    let wall = median_time(3, || {
        total = 0;
        for &term in &terms {
            let mut it = rpls.iter_term(term).expect("iter");
            while it.next_entry().expect("entry").is_some() {
                total += 1;
            }
        }
        total
    });
    let per_sec = total as f64 / wall.as_secs_f64().max(1e-9);
    (total, per_sec)
}

fn main() {
    let sys = build_collection(Collection::Ieee, Scale::small().ieee_docs, true);
    let queries = ieee_queries();
    for q in &queries {
        sys.materialize_for(q, ListKind::Both).expect("materialize");
    }

    // --- Compression: the tentpole's acceptance bar. -----------------------
    let (rpl, erpl) = footprints(&sys);
    let rpl_ratio = rpl.seed_bytes as f64 / rpl.block_bytes.max(1) as f64;
    let erpl_ratio = erpl.seed_bytes as f64 / erpl.block_bytes.max(1) as f64;
    let combined_ratio = (rpl.seed_bytes + erpl.seed_bytes) as f64
        / (rpl.block_bytes + erpl.block_bytes).max(1) as f64;
    eprintln!(
        "rpl: {} entries, {} blocks, {} B (seed {} B, {rpl_ratio:.2}x)",
        rpl.entries, rpl.blocks, rpl.block_bytes, rpl.seed_bytes
    );
    eprintln!(
        "erpl: {} entries, {} blocks, {} B (seed {} B, {erpl_ratio:.2}x)",
        erpl.entries, erpl.blocks, erpl.block_bytes, erpl.seed_bytes
    );
    assert!(
        rpl_ratio >= 2.0,
        "RPL block layout must halve the seed layout's bytes (got {rpl_ratio:.2}x)"
    );
    assert!(
        erpl_ratio >= 2.0,
        "ERPL block layout must halve the seed layout's bytes (got {erpl_ratio:.2}x)"
    );

    // --- Decode throughput. ------------------------------------------------
    let (decoded, entries_per_sec) = decode_throughput(&sys);
    eprintln!("decode: {decoded} entries, {entries_per_sec:.0} entries/s");

    // --- Equivalence + cost validation per query. --------------------------
    let engine = sys.engine();
    let mut query_json = String::new();
    for (i, q) in queries.iter().enumerate() {
        let eval = |strategy, k| {
            engine
                .evaluate(q, EvalOptions::new().k(k).strategy(strategy))
                .expect("evaluate")
        };
        let era = eval(Strategy::Era, None);
        let merge = eval(Strategy::Merge, None);
        assert_same_ranking(&era.answers, &merge.answers, q);
        for k in [1usize, 10, era.total_answers.max(1)] {
            let ta = eval(Strategy::Ta, Some(k));
            assert_same_ranking(
                &eval(Strategy::Era, Some(k)).answers,
                &ta.answers,
                &format!("{q} k={k}"),
            );
        }

        let validations = engine.validate_costs(q, 10).expect("cost validation");
        for v in &validations {
            assert!(
                v.ratio().is_finite() && v.within_factor(TA_PREDICTION_FACTOR),
                "{q} {}: measured {} vs predicted {} outside factor {TA_PREDICTION_FACTOR}",
                v.strategy,
                v.measured,
                v.predicted
            );
        }

        if i > 0 {
            query_json.push(',');
        }
        query_json.push_str(&format!(
            "{{\"query\":\"{}\",\"total_answers\":{},\"cost_validation\":[",
            trex::obs::json_escape(q),
            era.total_answers
        ));
        for (j, v) in validations.iter().enumerate() {
            if j > 0 {
                query_json.push(',');
            }
            trex::ToJson::write_json(v, &mut query_json);
        }
        query_json.push_str("]}");
    }

    // --- Export. -----------------------------------------------------------
    let started = Instant::now();
    let out = format!(
        "{{{},\"compression\":{{\
         \"rpl\":{{\"entries\":{},\"blocks\":{},\"block_bytes\":{},\"seed_bytes\":{},\"ratio\":{rpl_ratio:.4}}},\
         \"erpl\":{{\"entries\":{},\"blocks\":{},\"block_bytes\":{},\"seed_bytes\":{},\"ratio\":{erpl_ratio:.4}}},\
         \"combined_ratio\":{combined_ratio:.4}}},\
         \"decode\":{{\"entries\":{decoded},\"entries_per_sec\":{entries_per_sec:.0}}},\
         \"queries\":[{query_json}]}}",
        bench_header(Scale::small().ieee_docs, 1),
        rpl.entries,
        rpl.blocks,
        rpl.block_bytes,
        rpl.seed_bytes,
        erpl.entries,
        erpl.blocks,
        erpl.block_bytes,
        erpl.seed_bytes,
    );
    let path = store_dir().join("BENCH_blocks.json");
    std::fs::write(&path, &out).expect("write BENCH_blocks.json");
    eprintln!(
        "wrote {} ({} bytes) in {:.1} ms",
        path.display(),
        out.len(),
        started.elapsed().as_secs_f64() * 1e3
    );
}
