//! Ablation benches for the design choices DESIGN.md calls out:
//! summary kind, posting-chunk size, buffer-pool capacity, and TA's
//! heap-measurement / stop-check cadence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{
    AliasMap, Analyzer, EvalOptions, ListKind, Strategy, SummaryKind, TrexConfig, TrexSystem,
};
use trex_bench::store_dir;

const DOCS: usize = 120;
const QUERY: &str = "//article//sec[about(., xml query evaluation)]";

fn build_with(name: &str, summary: SummaryKind, pool_pages: usize) -> TrexSystem {
    let path = store_dir().join(format!("ablation-{name}.db"));
    let _ = std::fs::remove_file(&path);
    let mut config = TrexConfig::new(&path);
    config.summary = summary;
    config.pool_pages = pool_pages;
    config.alias = AliasMap::inex_ieee();
    config.analyzer = Analyzer::default();
    let gen = IeeeGenerator::new(CorpusConfig {
        docs: DOCS,
        ..CorpusConfig::ieee_default()
    });
    TrexSystem::build(config, gen.documents()).expect("build")
}

/// Summary choice: coarser partitions translate //article//sec to fewer,
/// larger extents. ERA cost tracks the number and size of the extents
/// scanned. Only nesting-free summaries can serve retrieval (the Tag and
/// k=1 partitions nest `sec` inside `sec` on this corpus and are rejected
/// by the engine), so the ablation compares the incoming summary against
/// k-suffix summaries with k = 2 and 3.
fn ablation_summary(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_summary");
    group.sample_size(10);
    for (name, kind) in [
        ("incoming", SummaryKind::Incoming),
        ("ksuffix2", SummaryKind::KSuffix(2)),
        ("ksuffix3", SummaryKind::KSuffix(3)),
    ] {
        let sys = build_with(&format!("summary-{name}"), kind, 4096);
        if !sys.index().summary().is_nesting_free() {
            eprintln!("skipping {name}: summary has nested extents");
            continue;
        }
        group.bench_function(BenchmarkId::new("era", name), |b| {
            b.iter(|| sys.search_with(QUERY, None, Strategy::Era).unwrap())
        });
    }
    group.finish();
}

/// Posting-chunk size: larger chunks mean fewer B+tree entries but coarser
/// reads. Exercised through a raw index build + ERA.
fn ablation_chunk(c: &mut Criterion) {
    use std::sync::Arc;
    use trex::index::{IndexBuilder, TrexIndex};
    use trex::storage::Store;

    let mut group = c.benchmark_group("ablation_chunk");
    group.sample_size(10);
    let gen = IeeeGenerator::new(CorpusConfig {
        docs: DOCS,
        ..CorpusConfig::ieee_default()
    });
    let docs: Vec<String> = gen.documents().collect();
    for chunk in [64usize, 256, 1024] {
        let path = store_dir().join(format!("ablation-chunk-{chunk}.db"));
        let _ = std::fs::remove_file(&path);
        let store = Store::create(&path, 4096).unwrap();
        let mut builder = IndexBuilder::new(
            &store,
            SummaryKind::Incoming,
            AliasMap::inex_ieee(),
            Analyzer::default(),
        )
        .unwrap();
        builder.set_postings_chunk_size(chunk);
        for d in &docs {
            builder.add_document(d).unwrap();
        }
        builder.finish().unwrap();
        let index = TrexIndex::open(Arc::new(store)).unwrap();
        let engine = trex::QueryEngine::new(&index);
        group.bench_function(BenchmarkId::new("era", chunk), |b| {
            b.iter(|| {
                engine
                    .evaluate(QUERY, EvalOptions::new().strategy(Strategy::Era))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Buffer-pool capacity: a pool too small for the working set forces
/// re-reads during the zig-zag ERA scan.
fn ablation_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_buffer");
    group.sample_size(10);
    for pages in [16usize, 256, 4096] {
        let sys = build_with(&format!("buffer-{pages}"), SummaryKind::Incoming, pages);
        group.bench_function(BenchmarkId::new("era", pages), |b| {
            b.iter(|| sys.search_with(QUERY, None, Strategy::Era).unwrap())
        });
    }
    group.finish();
}

/// Heap policy: the efficient binary heap vs the deliberately naive sorted
/// vector with O(k) shifting — the kind of heap-management cost whose
/// removal the paper's ITA curves quantify (§5.2). Runs TA directly so the
/// policy can be set.
fn ablation_heap(c: &mut Criterion) {
    use trex::core::ta::{ta, TaOptions};
    use trex::core::HeapPolicy;

    let sys = build_with("heap", SummaryKind::Incoming, 4096);
    sys.materialize_for(QUERY, ListKind::Rpl).unwrap();
    let engine = sys.engine();
    let translation = engine.translate(QUERY, Default::default()).unwrap();
    let rpls = sys.index().rpls().unwrap();

    let mut group = c.benchmark_group("ablation_heap");
    group.sample_size(10);
    for (name, policy) in [
        ("binary", HeapPolicy::Binary),
        ("sorted_vec", HeapPolicy::SortedVec),
    ] {
        for k in [10usize, 100] {
            group.bench_function(BenchmarkId::new(format!("ta_{name}"), k), |b| {
                b.iter(|| {
                    let mut opts = TaOptions::new(k);
                    opts.measure_heap = false;
                    opts.heap_policy = policy;
                    ta(&rpls, &translation.sids, &translation.terms, opts).unwrap()
                })
            });
        }
    }
    // Clock overhead itself.
    for (name, measure_heap) in [("clocked", true), ("unclocked", false)] {
        group.bench_function(BenchmarkId::new("ta_k10", name), |b| {
            b.iter(|| {
                engine
                    .evaluate_translated(
                        translation.clone(),
                        EvalOptions::new()
                            .k(10)
                            .strategy(Strategy::Ta)
                            .measure_heap(measure_heap),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_summary,
    ablation_chunk,
    ablation_buffer,
    ablation_heap
);
criterion_main!(benches);
