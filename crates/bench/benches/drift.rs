//! Cost-model drift-monitor bench, exported as `BENCH_drift.json`.
//!
//! Two claims, one run. First, **overhead**: drift sampling at the
//! production rate (1-in-16 queries takes the counter-snapshot path) must
//! stay within 5% of serving with sampling off — measured as interleaved
//! off/on pairs so common-mode noise cancels per pair, median pair ratio
//! asserted ≤ 1.05, the same methodology as the telemetry-overhead bench.
//! Second, **accuracy**: on a steady traced workload the Merge entry
//! prediction (§4 counts exactly what the strategy reads) converges to
//! near-zero relative error, and the TA prediction stays within the
//! documented `TA_PREDICTION_FACTOR` headroom.

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::obs::DriftKind;
use trex::{
    EvalOptions, ListKind, QueryEngine, Strategy, TrexConfig, TrexSystem, TA_PREDICTION_FACTOR,
};
use trex_bench::{bench_header, median_time, ms, store_dir, Scale};

const MIX: [&str; 4] = [
    "//article//sec[about(., xml query evaluation)]",
    "//sec[about(., code signing verification)]",
    "//article//sec[about(., model checking state space)]",
    "//article[about(., information retrieval ranking)]",
];

fn build_system() -> TrexSystem {
    let path = store_dir().join("drift-bench.db");
    let _ = std::fs::remove_file(&path);
    let gen = IeeeGenerator::new(CorpusConfig {
        docs: Scale::small().ieee_docs,
        ..CorpusConfig::ieee_default()
    });
    TrexSystem::build(TrexConfig::new(&path), gen.documents()).expect("build bench collection")
}

fn serve_mix(engine: &QueryEngine<'_>, strategy: Strategy) {
    for q in MIX {
        engine
            .evaluate(q, EvalOptions::new().k(Some(10)).strategy(strategy))
            .expect("bench query");
    }
}

fn main() {
    let system = build_system();
    // Redundant lists for the whole mix, so Merge and TA both run.
    for q in MIX {
        system
            .materialize_for(q, ListKind::Both)
            .expect("materialise redundant lists");
    }
    let drift = &system.index().telemetry().drift;
    let engine = QueryEngine::new(system.index());

    serve_mix(&engine, Strategy::Merge); // warm-up: page cache, dictionaries

    // Overhead: sampling off vs the production 1-in-16 rate, interleaved.
    let mut ratios = Vec::new();
    let (mut off, mut on) = (std::time::Duration::MAX, std::time::Duration::MAX);
    for _ in 0..7 {
        drift.set_sample_every(0);
        let o = median_time(3, || serve_mix(&engine, Strategy::Merge));
        drift.set_sample_every(trex::obs::DEFAULT_DRIFT_SAMPLE_EVERY);
        let w = median_time(3, || serve_mix(&engine, Strategy::Merge));
        ratios.push(w.as_secs_f64() / o.as_secs_f64().max(1e-9));
        off = off.min(o);
        on = on.min(w);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[ratios.len() / 2];
    drift.set_sample_every(0);

    // Accuracy: a steady traced workload, both strategies, every query
    // feeding the monitor through the explicit-trace path.
    for _ in 0..12 {
        for q in MIX {
            engine
                .evaluate(
                    q,
                    EvalOptions::new()
                        .k(Some(10))
                        .trace(true)
                        .strategy(Strategy::Merge),
                )
                .expect("traced merge query");
            engine
                .evaluate(
                    q,
                    EvalOptions::new()
                        .k(Some(10))
                        .trace(true)
                        .strategy(Strategy::Ta),
                )
                .expect("traced ta query");
        }
    }

    let merge_entries = drift.ewma(DriftKind::MergeEntries);
    let merge_blocks = drift.ewma(DriftKind::MergeBlocks);
    let ta_entries = drift.ewma(DriftKind::TaEntries);
    let ta_blocks = drift.ewma(DriftKind::TaBlocks);
    eprintln!(
        "drift overhead: off {:.3} ms, on {:.3} ms, median pair ratio {ratio:.4}; \
         ewma merge entries {merge_entries:.4} blocks {merge_blocks:.4}, \
         ta entries {ta_entries:.4} blocks {ta_blocks:.4}, {} alerts",
        ms(off),
        ms(on),
        drift.alerts(),
    );
    assert!(
        ratio <= 1.05,
        "drift sampling at the production rate must cost at most 5% (ratio {ratio:.4})"
    );
    assert!(
        drift.samples(DriftKind::MergeEntries) >= 12 * MIX.len() as u64,
        "every traced merge query must feed the monitor"
    );
    assert!(
        merge_entries < 0.1,
        "merge predictions are exact; drift {merge_entries:.4} should be ~0"
    );
    assert!(
        ta_entries < TA_PREDICTION_FACTOR,
        "ta drift {ta_entries:.4} outside the documented prediction factor"
    );

    let slot = |kind: DriftKind| {
        format!(
            "{{\"ewma\":{:.6},\"samples\":{}}}",
            drift.ewma(kind),
            drift.samples(kind)
        )
    };
    let out = format!(
        "{{{},\"drift\":{{\"queries_per_batch\":{},\"overhead\":{{\"off_ms\":{:.4},\
         \"on_ms\":{:.4},\"ratio\":{ratio:.4}}},\"slots\":{{\"merge_entries\":{},\
         \"merge_blocks\":{},\"ta_entries\":{},\"ta_blocks\":{}}},\"alerts\":{},\
         \"alert_threshold\":{:.3}}}}}",
        bench_header(Scale::small().ieee_docs, 1),
        MIX.len(),
        ms(off),
        ms(on),
        slot(DriftKind::MergeEntries),
        slot(DriftKind::MergeBlocks),
        slot(DriftKind::TaEntries),
        slot(DriftKind::TaBlocks),
        drift.alerts(),
        drift.alert_threshold(),
    );
    let path = store_dir().join("BENCH_drift.json");
    std::fs::write(&path, &out).expect("write BENCH_drift.json");
    eprintln!("wrote {}", path.display());
}
