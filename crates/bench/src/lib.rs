//! Shared infrastructure for the experiment harness and the Criterion
//! benches: building (and caching) the synthetic collections, k sweeps, and
//! simple measurement plumbing.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use trex::corpus::{Collection, CorpusConfig, IeeeGenerator, WikiGenerator};
use trex::{AliasMap, PartitionedTrexSystem, TrexConfig, TrexSystem};

/// Experiment scale: document counts for the two collections.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// IEEE-like documents (paper: 16,819).
    pub ieee_docs: usize,
    /// Wikipedia-like documents (paper: 659,388).
    pub wiki_docs: usize,
}

impl Scale {
    /// The default laptop scale used by `experiments` and EXPERIMENTS.md.
    pub fn default_scale() -> Scale {
        Scale {
            ieee_docs: 1200,
            wiki_docs: 3000,
        }
    }

    /// A tiny scale for smoke tests and Criterion benches.
    pub fn small() -> Scale {
        Scale {
            ieee_docs: 150,
            wiki_docs: 300,
        }
    }
}

/// Where experiment store files live (under `target/` so `cargo clean`
/// removes them).
pub fn store_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/trex-experiments");
    std::fs::create_dir_all(&dir).expect("create experiment dir");
    dir
}

/// Builds (or reuses, when `reuse` is set and the file exists) the system
/// for one collection at the given document count.
pub fn build_collection(collection: Collection, docs: usize, reuse: bool) -> TrexSystem {
    let name = match collection {
        Collection::Ieee => format!("ieee-{docs}.db"),
        Collection::Wiki => format!("wiki-{docs}.db"),
    };
    let path = store_dir().join(name);
    let mut config = TrexConfig::new(&path);
    if collection == Collection::Wiki {
        config.alias = AliasMap::inex_wiki();
    }
    if reuse && path.exists() {
        if let Ok(system) = TrexSystem::open(config.clone()) {
            return system;
        }
    }
    match collection {
        Collection::Ieee => {
            let gen = IeeeGenerator::new(CorpusConfig {
                docs,
                ..CorpusConfig::ieee_default()
            });
            TrexSystem::build(config, gen.documents()).expect("build ieee collection")
        }
        Collection::Wiki => {
            let gen = WikiGenerator::new(CorpusConfig {
                docs,
                ..CorpusConfig::wiki_default()
            });
            TrexSystem::build(config, gen.documents()).expect("build wiki collection")
        }
    }
}

/// Builds (or reuses, when `reuse` is set and the whole `.p0 … .p(N-1)`
/// family exists) the partitioned system for one collection. The corpus
/// and document order match [`build_collection`] exactly, so answers are
/// byte-identical to the single-store system at any partition count.
pub fn build_partitioned_collection(
    collection: Collection,
    docs: usize,
    partitions: usize,
    reuse: bool,
) -> PartitionedTrexSystem {
    let name = match collection {
        Collection::Ieee => format!("ieee-{docs}-part{partitions}.db"),
        Collection::Wiki => format!("wiki-{docs}-part{partitions}.db"),
    };
    let base = store_dir().join(name);
    let mut config = TrexConfig::new(&base);
    if collection == Collection::Wiki {
        config.alias = AliasMap::inex_wiki();
    }
    if reuse && PartitionedTrexSystem::detect_partitions(&base) == partitions {
        if let Ok(system) = PartitionedTrexSystem::open(config.clone()) {
            return system;
        }
    }
    match collection {
        Collection::Ieee => {
            let gen = IeeeGenerator::new(CorpusConfig {
                docs,
                ..CorpusConfig::ieee_default()
            });
            PartitionedTrexSystem::build(config, partitions, gen.documents())
                .expect("build partitioned ieee collection")
        }
        Collection::Wiki => {
            let gen = WikiGenerator::new(CorpusConfig {
                docs,
                ..CorpusConfig::wiki_default()
            });
            PartitionedTrexSystem::build(config, partitions, gen.documents())
                .expect("build partitioned wiki collection")
        }
    }
}

/// The k values swept in the figures: roughly geometric, clamped to the
/// result size like the paper's per-query x axes.
pub fn k_sweep(total_answers: usize) -> Vec<usize> {
    let mut ks = vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000];
    ks.retain(|&k| k <= total_answers.max(1) * 2);
    if ks.is_empty() {
        ks.push(1);
    }
    ks
}

/// Runs `f` `runs` times and returns the median duration (the paper ran
/// five and averaged the middle three; the median is the same robustness
/// idea at laptop scale).
pub fn median_time<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let runs = runs.max(1);
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// Milliseconds, for tables.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The common header every `BENCH_*.json` export opens with:
///
/// ```json
/// "header":{"schema_version":1,"unix_ts":0,"scale":150,"threads":4,"git_rev":"unknown"}
/// ```
///
/// `scale` is the collection size (documents) the bench ran at and `threads`
/// its worker-thread count. Timestamp and revision are read from the
/// environment at export time (`TREX_BENCH_UNIX_TS`, `TREX_BENCH_GIT_REV`)
/// rather than sampled, so a bench rerun under the same environment is
/// byte-identical; unset they default to `0` / `"unknown"`. The schema
/// version is [`trex::obs::SCHEMA_VERSION`] — the one number shared by
/// every observability export — and `scripts/check_bench_headers.sh`
/// asserts all `BENCH_*.json` files agree on it. The schema is documented
/// in EXPERIMENTS.md.
pub fn bench_header(scale: usize, threads: usize) -> String {
    let unix_ts: u64 = std::env::var("TREX_BENCH_UNIX_TS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let git_rev = std::env::var("TREX_BENCH_GIT_REV").unwrap_or_else(|_| "unknown".to_string());
    format!(
        "\"header\":{{\"schema_version\":{},\"unix_ts\":{unix_ts},\"scale\":{scale},\
         \"threads\":{threads},\"git_rev\":\"{}\"}}",
        trex::obs::SCHEMA_VERSION,
        trex::obs::json_escape(&git_rev)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_is_clamped() {
        let ks = k_sweep(30);
        assert!(ks.iter().all(|&k| k <= 60));
        assert!(ks.contains(&1));
        assert_eq!(k_sweep(0), vec![1, 2], "empty results still sweep tiny k");
    }

    #[test]
    fn bench_header_is_deterministic_without_env() {
        // The test environment may or may not set the override vars; the
        // shape is fixed either way.
        let h = bench_header(150, 4);
        assert!(h.starts_with("\"header\":{\"schema_version\":1,\"unix_ts\":"));
        assert!(h.contains("\"scale\":150,\"threads\":4,\"git_rev\":\""));
        assert!(h.ends_with("\"}"));
    }

    #[test]
    fn median_time_smoke() {
        let d = median_time(3, || (0..1000u64).sum::<u64>());
        assert!(d < Duration::from_secs(1));
    }
}
