//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (§2.1 summary sizes, Table 1, Figures 4–6,
//! the §5.2 read-depth observation) plus the §4 advisor experiment, the §4
//! parallel-evaluation race, and a corpus-scaling sanity sweep.
//!
//! ```sh
//! cargo run --release -p trex-bench --bin experiments -- all
//! cargo run --release -p trex-bench --bin experiments -- figures --query 260
//! cargo run --release -p trex-bench --bin experiments -- table1 --ieee 2000 --wiki 6000
//! ```
//!
//! CSV series are written to `target/trex-experiments/results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

use trex::corpus::{Collection, CorpusConfig, IeeeGenerator, PAPER_QUERIES};
use trex::summary::{AliasMap, SummaryBuilder, SummaryKind};
use trex::xml::Document;
use trex::{
    AdvisorOptions, EvalOptions, ListKind, SelectionMethod, Strategy, StrategyStats, TrexSystem,
    Workload,
};

use trex_bench::{build_collection, k_sweep, median_time, ms, store_dir, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_scale(&args);
    let query_filter: Option<u32> =
        flag_value(&args, "--query").map(|v| v.parse().expect("--query ID"));
    let runs: usize = flag_value(&args, "--runs").map_or(3, |v| v.parse().expect("--runs N"));

    match command {
        "table1" => table1(scale),
        "summaries" => summaries(scale),
        "figures" => figures(scale, query_filter, runs),
        "depth" => depth(scale),
        "advisor" => advisor(scale),
        "race" => race(scale, runs),
        "scaling" => scaling(),
        "all" => {
            summaries(scale);
            table1(scale);
            figures(scale, query_filter, runs);
            depth(scale);
            advisor(scale);
            race(scale, runs);
            scaling();
        }
        other => {
            eprintln!(
                "unknown command {other:?}; expected table1|summaries|figures|depth|advisor|race|scaling|all"
            );
            std::process::exit(2);
        }
    }
}

fn parse_scale(args: &[String]) -> Scale {
    let mut scale = Scale::default_scale();
    if let Some(v) = flag_value(args, "--ieee") {
        scale.ieee_docs = v.parse().expect("--ieee N");
    }
    if let Some(v) = flag_value(args, "--wiki") {
        scale.wiki_docs = v.parse().expect("--wiki N");
    }
    scale
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn results_dir() -> PathBuf {
    let dir = store_dir().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn system_for(collection: Collection, scale: Scale) -> TrexSystem {
    let docs = match collection {
        Collection::Ieee => scale.ieee_docs,
        Collection::Wiki => scale.wiki_docs,
    };
    eprintln!("[setup] building/opening {collection:?} collection ({docs} docs)…");
    build_collection(collection, docs, true)
}

// ---------------------------------------------------------------------------
// §2.1: summary sizes (the Figure 1 discussion numbers)
// ---------------------------------------------------------------------------

fn summaries(scale: Scale) {
    println!("\n== Experiment: summary sizes (paper §2.1 / Figure 1 discussion) ==");
    println!("paper (INEX IEEE): incoming 11563, alias incoming 7860, tag 185, alias tag 145");
    println!("expected shape: alias < plain within a kind; tag ≪ incoming\n");

    let gen = IeeeGenerator::new(CorpusConfig {
        docs: scale.ieee_docs,
        ..CorpusConfig::ieee_default()
    });
    let variants = [
        ("incoming", SummaryKind::Incoming, AliasMap::identity()),
        (
            "alias incoming",
            SummaryKind::Incoming,
            AliasMap::inex_ieee(),
        ),
        ("tag", SummaryKind::Tag, AliasMap::identity()),
        ("alias tag", SummaryKind::Tag, AliasMap::inex_ieee()),
        (
            "k-suffix k=1",
            SummaryKind::KSuffix(1),
            AliasMap::identity(),
        ),
        (
            "k-suffix k=2",
            SummaryKind::KSuffix(2),
            AliasMap::identity(),
        ),
        (
            "k-suffix k=3",
            SummaryKind::KSuffix(3),
            AliasMap::identity(),
        ),
    ];
    let mut sizes = Vec::new();
    for (name, kind, alias) in variants {
        let mut builder = SummaryBuilder::new(kind, alias);
        for doc in gen.documents() {
            builder.add_document(&Document::parse(&doc).expect("generated XML parses"));
        }
        let (summary, _) = builder.finish();
        println!(
            "  {name:<16} {:>6} nodes, {:>9} elements, nesting-free: {}",
            summary.node_count(),
            summary.total_elements(),
            summary.is_nesting_free()
        );
        sizes.push((name, summary.node_count()));
    }
    let get = |n: &str| sizes.iter().find(|(name, _)| *name == n).unwrap().1;
    let ok = get("alias incoming") <= get("incoming")
        && get("alias tag") <= get("tag")
        && get("tag") < get("incoming");
    println!(
        "shape check (alias ≤ plain, tag < incoming): {}",
        if ok { "PASS" } else { "FAIL" }
    );
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

fn table1(scale: Scale) {
    println!("\n== Experiment: Table 1 (7 queries: translation and result sizes) ==");
    println!(
        "scale: {} IEEE-like docs (paper 16,819), {} Wiki-like docs (paper 659,388)\n",
        scale.ieee_docs, scale.wiki_docs
    );
    let ieee = system_for(Collection::Ieee, scale);
    let wiki = system_for(Collection::Wiki, scale);

    let mut csv = String::from("id,collection,sids,terms,answers\n");
    println!(
        "{:>4}  {:<74} {:<5} {:>5} {:>6} {:>8}",
        "ID", "NEXI Expression", "Coll", "#sids", "#terms", "#answers"
    );
    for q in PAPER_QUERIES {
        let system = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        let result = system
            .search_with(q.nexi, None, Strategy::Era)
            .expect("query evaluates");
        println!(
            "{:>4}  {:<74} {:<5} {:>5} {:>6} {:>8}",
            q.id,
            q.nexi,
            match q.collection {
                Collection::Ieee => "IEEE",
                Collection::Wiki => "Wiki",
            },
            result.translation.sids.len(),
            result.translation.terms.len(),
            result.total_answers
        );
        writeln!(
            csv,
            "{},{:?},{},{},{}",
            q.id,
            q.collection,
            result.translation.sids.len(),
            result.translation.terms.len(),
            result.total_answers
        )
        .unwrap();
    }
    let path = results_dir().join("table1.csv");
    std::fs::write(&path, csv).expect("write table1.csv");
    println!("\nwrote {}", path.display());
}

// ---------------------------------------------------------------------------
// Figures 4–6: per-query evaluation times vs k for ERA / Merge / TA / ITA
// ---------------------------------------------------------------------------

fn figures(scale: Scale, query_filter: Option<u32>, runs: usize) {
    println!("\n== Experiment: Figures 4–6 (evaluation time per method vs k) ==");
    let ieee = system_for(Collection::Ieee, scale);
    let wiki = system_for(Collection::Wiki, scale);

    let mut csv = String::from("query,method,k,ms\n");
    for q in PAPER_QUERIES {
        if let Some(filter) = query_filter {
            if q.id != filter {
                continue;
            }
        }
        let system = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        println!("\n-- Query {} ({:?}): {}", q.id, q.collection, q.nexi);
        system
            .materialize_for(q.nexi, ListKind::Both)
            .expect("materialize lists");
        let engine = system.engine();
        let translation = engine
            .translate(q.nexi, Default::default())
            .expect("translate");

        // ERA and Merge compute all answers.
        let era_time = median_time(runs, || {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().strategy(Strategy::Era),
                )
                .expect("era")
        });
        let merge_time = median_time(runs, || {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().strategy(Strategy::Merge),
                )
                .expect("merge")
        });
        let total = engine
            .evaluate_translated(
                translation.clone(),
                EvalOptions::new().strategy(Strategy::Era),
            )
            .expect("era")
            .total_answers;
        println!("   answers: {total}");
        println!("   {:<8} {:>12.3} ms   (all answers)", "ERA", ms(era_time));
        println!(
            "   {:<8} {:>12.3} ms   (all answers)",
            "Merge",
            ms(merge_time)
        );
        writeln!(csv, "{},ERA,all,{:.3}", q.id, ms(era_time)).unwrap();
        writeln!(csv, "{},Merge,all,{:.3}", q.id, ms(merge_time)).unwrap();

        println!("   {:>8} {:>12} {:>12}", "k", "TA ms", "ITA ms");
        let mut ta_at_k: Vec<(usize, f64, f64)> = Vec::new();
        for k in k_sweep(total) {
            // Median over runs, taking matching heap time from the median run.
            let mut samples: Vec<(f64, f64)> = (0..runs.max(1))
                .map(|_| {
                    let result = engine
                        .evaluate_translated(
                            translation.clone(),
                            EvalOptions::new()
                                .k(k)
                                .strategy(Strategy::Ta)
                                .measure_heap(true),
                        )
                        .expect("ta");
                    match &result.stats {
                        StrategyStats::Ta(stats) => (ms(stats.wall), ms(stats.ita_time())),
                        _ => unreachable!(),
                    }
                })
                .collect();
            samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let (ta_ms, ita_ms) = samples[samples.len() / 2];
            println!("   {:>8} {:>12.3} {:>12.3}", k, ta_ms, ita_ms);
            writeln!(csv, "{},TA,{},{:.3}", q.id, k, ta_ms).unwrap();
            writeln!(csv, "{},ITA,{},{:.3}", q.id, k, ita_ms).unwrap();
            ta_at_k.push((k, ta_ms, ita_ms));
        }

        // Shape observations in the paper's terms.
        let era_ms = ms(era_time);
        let merge_ms = ms(merge_time);
        let small_k_ta = ta_at_k.first().map(|&(_, t, _)| t).unwrap_or(f64::MAX);
        let large_k_ta = ta_at_k.last().map(|&(_, t, _)| t).unwrap_or(f64::MAX);
        println!(
            "   shape: Merge/ERA = {:.3}, TA(k=1)/ERA = {:.3}, TA(max k)/ERA = {:.3}",
            merge_ms / era_ms,
            small_k_ta / era_ms,
            large_k_ta / era_ms
        );
    }
    let path = results_dir().join("figures.csv");
    std::fs::write(&path, csv).expect("write figures.csv");
    println!("\nwrote {}", path.display());
}

// ---------------------------------------------------------------------------
// §5.2 observation: how deep TA reads the RPLs
// ---------------------------------------------------------------------------

fn depth(scale: Scale) {
    println!("\n== Experiment: TA read depth (paper §5.2) ==");
    println!("paper: all IEEE queries read the ENTIRE RPLs for k ≥ 10; Wiki for k ≥ 50\n");
    let ieee = system_for(Collection::Ieee, scale);
    let wiki = system_for(Collection::Wiki, scale);

    let mut csv = String::from("query,k,sorted_accesses,entire\n");
    println!(
        "{:>6} {:>8} {:>16} {:>10}",
        "query", "k", "accesses", "entire?"
    );
    for q in PAPER_QUERIES {
        let system = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        system
            .materialize_for(q.nexi, ListKind::Rpl)
            .expect("materialize");
        let engine = system.engine();
        let translation = engine
            .translate(q.nexi, Default::default())
            .expect("translate");
        let mut first_entire: Option<usize> = None;
        for k in [1usize, 2, 5, 10, 20, 50, 100] {
            let result = engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().k(k).strategy(Strategy::Ta),
                )
                .expect("ta");
            let StrategyStats::Ta(stats) = &result.stats else {
                unreachable!()
            };
            println!(
                "{:>6} {:>8} {:>16} {:>10}",
                q.id, k, stats.sorted_accesses, stats.read_entire_lists
            );
            writeln!(
                csv,
                "{},{},{},{}",
                q.id, k, stats.sorted_accesses, stats.read_entire_lists
            )
            .unwrap();
            if stats.read_entire_lists && first_entire.is_none() {
                first_entire = Some(k);
            }
        }
        match first_entire {
            Some(k) => println!("        -> query {} reads entire RPLs from k = {k}", q.id),
            None => println!(
                "        -> query {} never read entire lists up to k = 100",
                q.id
            ),
        }
    }
    let path = results_dir().join("depth.csv");
    std::fs::write(&path, csv).expect("write depth.csv");
    println!("\nwrote {}", path.display());
}

// ---------------------------------------------------------------------------
// §4: the self-managing advisor under a budget sweep
// ---------------------------------------------------------------------------

fn advisor(scale: Scale) {
    println!("\n== Experiment: self-managing advisor (paper §4) ==");
    let ieee = system_for(Collection::Ieee, scale);

    let workload = Workload::from_weights(
        PAPER_QUERIES
            .iter()
            .filter(|q| q.collection == Collection::Ieee)
            .map(|q| (q.nexi.to_string(), 1.0, 10))
            .collect(),
    )
    .expect("workload");

    // Profile once (this also materialises everything) to know the total.
    eprintln!("[advisor] profiling workload…");
    let costs = ieee.advisor().profile(&workload, 1).expect("profile");
    let total_bytes: u64 = costs.iter().map(|c| c.s_erpl() + c.s_rpl()).sum();
    println!(
        "workload: {} IEEE queries, full materialisation would need ~{} KiB\n",
        workload.len(),
        total_bytes / 1024
    );

    let mut csv = String::from("budget_frac,method,bytes_used,expected_saving_ms,supported\n");
    println!(
        "{:>12} {:>8} {:>12} {:>18} {:>10}",
        "budget", "method", "bytes used", "saving (ms/exec)", "supported"
    );
    for frac in [0.0f64, 0.1, 0.25, 0.5, 1.0] {
        let budget = (total_bytes as f64 * frac) as u64;
        for method in [SelectionMethod::Greedy, SelectionMethod::Lp] {
            let report = ieee
                .advisor()
                .apply(
                    &workload,
                    AdvisorOptions {
                        budget_bytes: budget,
                        method,
                        measure_runs: 1,
                    },
                )
                .expect("advisor apply");
            let supported = report
                .selection
                .choices
                .iter()
                .filter(|c| !matches!(c, trex::core::Choice::None))
                .count();
            println!(
                "{:>11.0}% {:>8} {:>12} {:>18.3} {:>7}/{}",
                frac * 100.0,
                match method {
                    SelectionMethod::Greedy => "greedy",
                    SelectionMethod::Lp => "lp",
                },
                report.bytes_used,
                report.expected_saving * 1e3,
                supported,
                workload.len()
            );
            writeln!(
                csv,
                "{},{:?},{},{:.3},{}",
                frac,
                method,
                report.bytes_used,
                report.expected_saving * 1e3,
                supported
            )
            .unwrap();
        }
    }
    let path = results_dir().join("advisor.csv");
    std::fs::write(&path, csv).expect("write advisor.csv");
    println!("\nwrote {}", path.display());
}

// ---------------------------------------------------------------------------
// §4: parallel evaluation — race TA against Merge, first finisher wins
// ---------------------------------------------------------------------------

fn race(scale: Scale, runs: usize) {
    println!("\n== Experiment: parallel evaluation race (paper §4) ==");
    println!("\"If the two computations are being done in parallel, the system can");
    println!("return the answer from the computation that finishes first.\"\n");
    let ieee = system_for(Collection::Ieee, scale);
    let wiki = system_for(Collection::Wiki, scale);

    let mut csv = String::from("query,k,ta_ms,merge_ms,race_ms,winner\n");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10} {:>12}",
        "query", "k", "TA ms", "Merge ms", "Race ms", "race winner"
    );
    for q in PAPER_QUERIES {
        let system = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        system
            .materialize_for(q.nexi, ListKind::Both)
            .expect("materialize");
        let engine = system.engine();
        let translation = engine
            .translate(q.nexi, Default::default())
            .expect("translate");
        for k in [10usize, 1000] {
            let run = |strategy: Strategy| {
                median_time(runs, || {
                    engine
                        .evaluate_translated(
                            translation.clone(),
                            EvalOptions::new().k(k).strategy(strategy),
                        )
                        .expect("evaluate")
                })
            };
            let ta_ms = ms(run(Strategy::Ta));
            let merge_ms = ms(run(Strategy::Merge));
            let race_result = engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().k(k).strategy(Strategy::Race),
                )
                .expect("race");
            let race_ms = ms(run(Strategy::Race));
            let winner = match &race_result.stats {
                StrategyStats::Race { won_by, .. } => format!("{won_by:?}"),
                _ => unreachable!(),
            };
            println!(
                "{:>6} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>12}",
                q.id, k, ta_ms, merge_ms, race_ms, winner
            );
            writeln!(
                csv,
                "{},{},{:.3},{:.3},{:.3},{}",
                q.id, k, ta_ms, merge_ms, race_ms, winner
            )
            .unwrap();
        }
    }
    let path = results_dir().join("race.csv");
    std::fs::write(&path, csv).expect("write race.csv");
    println!("\nexpected shape: Race tracks min(TA, Merge) plus thread-spawn overhead.");
    println!("wrote {}", path.display());
}

// ---------------------------------------------------------------------------
// Scaling: build and query cost as the collection grows (sanity ablation)
// ---------------------------------------------------------------------------

fn scaling() {
    println!("\n== Experiment: collection scaling (build + query cost vs corpus size) ==");
    let query = "//article//sec[about(., introduction information retrieval)]";
    let mut csv = String::from("docs,build_s,pages,answers,era_ms,merge_ms\n");
    println!(
        "{:>7} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "docs", "build s", "pages", "answers", "ERA ms", "Merge ms"
    );
    for docs in [150usize, 300, 600, 1200] {
        let started = std::time::Instant::now();
        let system = build_collection(Collection::Ieee, docs, false);
        let build_s = started.elapsed().as_secs_f64();
        system
            .materialize_for(query, ListKind::Erpl)
            .expect("materialize");
        let engine = system.engine();
        let translation = engine
            .translate(query, Default::default())
            .expect("translate");
        let era = median_time(3, || {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().strategy(Strategy::Era),
                )
                .expect("era")
        });
        let merge = median_time(3, || {
            engine
                .evaluate_translated(
                    translation.clone(),
                    EvalOptions::new().strategy(Strategy::Merge),
                )
                .expect("merge")
        });
        let answers = engine
            .evaluate_translated(
                translation.clone(),
                EvalOptions::new().strategy(Strategy::Era),
            )
            .expect("era")
            .total_answers;
        let pages = system.index().store().page_count();
        println!(
            "{:>7} {:>9.2} {:>8} {:>9} {:>10.3} {:>10.3}",
            docs,
            build_s,
            pages,
            answers,
            ms(era),
            ms(merge)
        );
        writeln!(
            csv,
            "{docs},{build_s:.2},{pages},{answers},{:.3},{:.3}",
            ms(era),
            ms(merge)
        )
        .unwrap();
    }
    let path = results_dir().join("scaling.csv");
    std::fs::write(&path, csv).expect("write scaling.csv");
    println!(
        "\nexpected shape: near-linear growth of build time, pages, answers and ERA/Merge time."
    );
    println!("wrote {}", path.display());
}
