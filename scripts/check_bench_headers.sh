#!/usr/bin/env bash
# Asserts every exported BENCH_*.json opens with the same bench header
# schema_version — the one number (trex::obs::SCHEMA_VERSION, stamped by
# trex_bench::bench_header) that downstream tooling keys its parsers on.
# A bench that drifts to a private header shape fails here, not in the
# dashboard. No jq in the build image, so this is plain grep.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

dir="target/trex-experiments"
shopt -s nullglob
files=("$dir"/BENCH_*.json)
if [ "${#files[@]}" -eq 0 ]; then
    echo "check_bench_headers: no $dir/BENCH_*.json files (run the benches first)" >&2
    exit 1
fi

versions=""
for f in "${files[@]}"; do
    v=$(grep -o '"schema_version":[0-9]*' "$f" | head -n 1 | cut -d: -f2)
    if [ -z "$v" ]; then
        echo "check_bench_headers: $f has no \"schema_version\" header" >&2
        exit 1
    fi
    echo "  $f: schema_version $v"
    versions="$versions $v"
done

distinct=$(echo "$versions" | tr ' ' '\n' | sed '/^$/d' | sort -u | wc -l)
if [ "$distinct" -ne 1 ]; then
    echo "check_bench_headers: BENCH_*.json files disagree on schema_version:$versions" >&2
    exit 1
fi
echo "check_bench_headers: ${#files[@]} export(s) agree on schema_version $(echo "$versions" | tr ' ' '\n' | sed '/^$/d' | sort -u)"
