#!/usr/bin/env bash
# Full verification gate: formatting, release build, the whole test suite,
# clippy with warnings denied, and a release-mode run of the concurrency
# stress test (races only show up with optimised codegen and real thread
# interleavings). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo test --release --test concurrency =="
cargo test --release -p trex --test concurrency

echo "verify: OK"
