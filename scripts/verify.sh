#!/usr/bin/env bash
# Full verification gate: formatting, release build, the whole test suite,
# clippy with warnings denied, release-mode runs of the concurrency stress
# test and the crash-recovery matrix (races and crash sweeps need optimised
# codegen), and the storage bench's WAL-overhead export (BENCH_wal.json).
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo test --release --test concurrency =="
cargo test --release -p trex --test concurrency

echo "== cargo test --release --test crash_recovery =="
cargo test --release -p trex --test crash_recovery

echo "== cargo bench --bench storage (exports BENCH_wal.json) =="
cargo bench -p trex-bench --bench storage

echo "verify: OK"
