#!/usr/bin/env bash
# Full verification gate: formatting, release build, the whole test suite,
# workspace-wide clippy with warnings denied, release-mode runs of the
# concurrency stress test, the crash-recovery matrix and the online
# self-management storm (races and crash sweeps need optimised codegen),
# the HTTP serving end-to-end suite, the block-codec property tests in
# release, and the bench exports
# (BENCH_wal.json, BENCH_selfmanage.json, BENCH_obs.json — which asserts
# the always-on telemetry overhead — BENCH_serve.json — which asserts
# cache-on p50 below cache-off and shedding under overload —
# BENCH_blocks.json — which asserts the ≥2× byte reduction of the block
# list layout with byte-identical answers across strategies —
# BENCH_ingest.json — which asserts a fold drains the delta with
# byte-identical answers — BENCH_partition.json — which asserts
# byte-identical answers at 1/2/4 partitions with exact per-partition
# decode accounting, plus the ≥2× 4-partition speedup on ≥4-core hosts —
# and BENCH_drift.json — which asserts the cost-model drift monitor costs
# ≤5% at the production sampling rate, Merge predictions converge to ~0
# relative error, and TA stays within TA_PREDICTION_FACTOR).
# The release-mode partition determinism storm (paper queries, crafted
# k-boundary score ties, concurrent ingest + reconcile) runs with the
# other release suites, as does the tracing/health/advisor-journal
# observability suite. check_bench_headers.sh closes the run by asserting
# every BENCH_*.json export shares one schema_version.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --release --test concurrency =="
cargo test --release -p trex --test concurrency

echo "== cargo test --release --test crash_recovery =="
cargo test --release -p trex --test crash_recovery

echo "== cargo test --release --test self_managing_online =="
cargo test --release -p trex --test self_managing_online

echo "== cargo test --release --test http_serve =="
cargo test --release -p trex --test http_serve

echo "== cargo test --release --test partition =="
cargo test --release -p trex --test partition

echo "== cargo test --release --test tracing_observability =="
cargo test --release -p trex --test tracing_observability

echo "== cargo test --release --test blocks_roundtrip =="
cargo test --release -p trex-index --test blocks_roundtrip

echo "== cargo bench --bench storage (exports BENCH_wal.json) =="
cargo bench -p trex-bench --bench storage

echo "== cargo bench --bench selfmanage (exports BENCH_selfmanage.json) =="
cargo bench -p trex-bench --bench selfmanage

echo "== cargo bench --bench obs (exports BENCH_obs.json) =="
cargo bench -p trex-bench --bench obs

echo "== cargo bench --bench serve (exports BENCH_serve.json) =="
cargo bench -p trex-bench --bench serve

echo "== cargo bench --bench blocks (exports BENCH_blocks.json) =="
cargo bench -p trex-bench --bench blocks

echo "== cargo bench --bench ingest (exports BENCH_ingest.json) =="
cargo bench -p trex-bench --bench ingest

echo "== cargo bench --bench partition (exports BENCH_partition.json) =="
cargo bench -p trex-bench --bench partition

echo "== cargo bench --bench drift (exports BENCH_drift.json) =="
cargo bench -p trex-bench --bench drift

echo "== check_bench_headers.sh =="
bash scripts/check_bench_headers.sh

echo "verify: OK"
