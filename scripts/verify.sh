#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, and clippy
# with warnings denied. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "verify: OK"
