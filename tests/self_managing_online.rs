//! Integration tests of the *online* self-managing layer: reconcile cycles
//! running concurrently with a multi-threaded query storm must never change
//! an answer, never surface a coverage error, and never exceed the budget.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{
    reconcile_once, CostCache, EvalOptions, ProfilerConfig, QueryEngine, SelfManageOptions,
    TrexConfig, TrexSystem, Workload, WorkloadProfiler,
};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-smo-{name}-{}.db", std::process::id()))
}

fn build(name: &str, docs: usize) -> (TrexSystem, std::path::PathBuf) {
    let store = temp(name);
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )
    .unwrap();
    (system, store)
}

const QUERIES: [&str; 4] = [
    "//article//sec[about(., xml query evaluation)]",
    "//sec[about(., code signing verification)]",
    "//article//sec[about(., model checking state space)]",
    "//article[about(., information retrieval ranking)]",
];

/// The tentpole guarantee: an 8-thread query storm runs while the
/// reconciler repeatedly re-plans under a *shifting* budget (generous →
/// tight → zero → generous). Every storm query must succeed and return
/// exactly the quiesced engine's answers — a query landing mid-reconcile
/// observes partial coverage and silently falls back to ERA, never errors —
/// and the registry must respect each cycle's budget.
#[test]
fn concurrent_storm_sees_quiesced_answers_while_budget_shifts() {
    let (system, store) = build("storm", 48);
    let k = Some(10);

    // Quiesced baseline, before any redundant list exists.
    let baseline: Vec<_> = QUERIES
        .iter()
        .map(|q| {
            system
                .engine()
                .evaluate(q, EvalOptions::new().k(k))
                .unwrap()
        })
        .collect();

    // Seed the profiler with a skewed stream so reconcile has a workload.
    let engine = system.engine();
    for (i, q) in QUERIES.iter().enumerate() {
        for _ in 0..(QUERIES.len() - i) * 2 {
            engine.evaluate(q, EvalOptions::new().k(k)).unwrap();
        }
    }

    let stop = AtomicBool::new(false);
    let storm_queries = AtomicUsize::new(0);
    let total_bytes = system.index().rpls().unwrap().total_bytes().unwrap()
        + system.index().erpls().unwrap().total_bytes().unwrap();
    assert_eq!(total_bytes, 0, "fresh build has no redundant lists");

    std::thread::scope(|scope| {
        for t in 0..8 {
            let (system, baseline) = (&system, &baseline);
            let (stop, storm_queries) = (&stop, &storm_queries);
            scope.spawn(move || {
                let engine = system.engine();
                while !stop.load(Ordering::Relaxed) {
                    let i = storm_queries.fetch_add(1, Ordering::Relaxed) % QUERIES.len();
                    let got = engine
                        .evaluate(QUERIES[i], EvalOptions::new().k(k))
                        .unwrap_or_else(|e| panic!("thread {t}, query {i}: {e}"));
                    assert_eq!(
                        got.answers, baseline[i].answers,
                        "thread {t}: answers drifted on query {i}"
                    );
                }
            });
        }

        // Reconcile through a budget shift while the storm runs.
        let mut cache = CostCache::new();
        let huge = 64 * 1024 * 1024;
        for budget in [huge, 4 * 1024, 0, huge] {
            let opts = SelfManageOptions::new(budget);
            let report =
                reconcile_once(system.index(), system.profiler(), &opts, &mut cache).unwrap();
            assert!(
                report.bytes_used <= budget,
                "cycle kept {} bytes over budget {budget}",
                report.bytes_used
            );
            assert!(!report.workload.is_empty(), "profiler fed the cycle");
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        storm_queries.load(Ordering::Relaxed) > 8,
        "the storm actually queried"
    );
    // The generous final cycle re-materialised lists for the hot shapes…
    let report_bytes = system.index().rpls().unwrap().total_bytes().unwrap()
        + system.index().erpls().unwrap().total_bytes().unwrap();
    assert!(report_bytes > 0, "final generous cycle kept lists");
    // …and the storm's Auto queries fell back to ERA whenever coverage was
    // missing (at minimum, every query before the first cycle finished).
    let counters = system.profiler().counters();
    assert!(
        counters.era_fallbacks.get() > 0,
        "ERA fallback was exercised"
    );
    assert_eq!(counters.cycles.get(), 4);
    std::fs::remove_file(&store).ok();
}

/// Live ingestion end to end, quiesced: an ingested document is returned
/// by matching queries immediately (no rebuild), the result cache never
/// serves a pre-ingest answer after the generation bump, and a fold leaves
/// an empty delta with byte-identical answers before and after.
#[test]
fn ingest_is_immediately_queryable_and_fold_preserves_answers() {
    let (system, store) = build("ingest", 24);
    let service = system.service();
    let k = Some(10);

    // Prime the cache: miss, then hit, on the pre-ingest generation.
    let req = trex::QueryRequest::new(QUERIES[0]).k(k);
    let first = service.execute(&req).unwrap();
    assert_eq!(first.cache, trex::CacheStatus::Miss);
    assert_eq!(service.execute(&req).unwrap().cache, trex::CacheStatus::Hit);

    // Ingest a document matching QUERIES[0]: WAL-durable, delta-resident.
    let doc_id = system
        .ingest_document(
            "<books><journal><article><bdy><sec><st>live</st>\
             <p>xml query evaluation arrives live</p></sec></bdy></article></journal></books>",
        )
        .unwrap();
    assert_eq!(doc_id, 24, "ids continue past the base build");
    assert_eq!(system.index().delta().doc_count(), 1);

    // The generation bumped, so the pre-ingest cache entry is unreachable:
    // the next lookup re-evaluates and sees the new document.
    let post = service.execute(&req).unwrap();
    assert_eq!(
        post.cache,
        trex::CacheStatus::Miss,
        "cache must not serve a pre-ingest result after the generation bump"
    );
    assert!(post.generation > first.generation);
    let all = system.search(QUERIES[0], None).unwrap();
    assert!(
        all.answers.iter().any(|a| a.element.doc == doc_id),
        "ingested doc must be returned by the matching query without a rebuild"
    );

    // Every strategy the engine can be forced into agrees on the combined
    // delta ∪ disk answers (rank safety is strategy-independent).
    system
        .materialize_for(QUERIES[0], trex::ListKind::Both)
        .unwrap();
    let auto = system.search(QUERIES[0], k).unwrap();
    for strategy in [trex::Strategy::Era, trex::Strategy::Merge] {
        let forced = system.search_with(QUERIES[0], k, strategy).unwrap();
        assert_eq!(forced.answers, auto.answers, "{strategy:?} disagrees");
    }

    // Fold: the delta empties and every query's answers are byte-identical
    // before and after (scoring inputs are frozen at build time).
    let before: Vec<_> = QUERIES
        .iter()
        .map(|q| system.search(q, None).unwrap().answers)
        .collect();
    let report = system.fold_once().unwrap().expect("delta was non-empty");
    assert_eq!(report.docs_folded, 1);
    assert!(
        system.index().delta().is_empty(),
        "fold must drain the delta"
    );
    for (q, pre) in QUERIES.iter().zip(&before) {
        let post = system.search(q, None).unwrap().answers;
        assert_eq!(&post, pre, "answers changed across fold for {q}");
    }
    // A second fold is a no-op.
    assert!(system.fold_once().unwrap().is_none());
    std::fs::remove_file(&store).ok();
}

/// The ingest tentpole under fire: a query storm runs while one thread
/// ingests a stream of documents and another keeps reconciling the
/// redundant lists. Every query must succeed with internally rank-safe
/// answers (sorted, deduplicated, within k) — a document is visible or not,
/// never half-visible — and acknowledged ingests must all be queryable at
/// the end, surviving a final fold with identical answers.
#[test]
fn concurrent_ingest_reconcile_query_storm_stays_rank_safe() {
    let (system, store) = build("ingest-storm", 32);
    let k = 10usize;
    const INGESTS: usize = 40;

    // Seed the profiler so reconcile has a workload to plan for.
    let engine = system.engine();
    for q in QUERIES {
        for _ in 0..3 {
            engine.evaluate(q, EvalOptions::new().k(Some(k))).unwrap();
        }
    }

    let stop = AtomicBool::new(false);
    let queries_run = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Ingest stream: every doc matches QUERIES[0].
        let ingester = {
            let system = &system;
            scope.spawn(move || {
                let mut ids = Vec::with_capacity(INGESTS);
                for i in 0..INGESTS {
                    let xml = format!(
                        "<books><journal><article><bdy><sec><st>stream</st>\
                         <p>xml query evaluation stream item {i}</p>\
                         </sec></bdy></article></journal></books>"
                    );
                    ids.push(system.ingest_document(&xml).unwrap());
                }
                ids
            })
        };

        // Reconcile loop, racing the ingests and the queries. Bounded so the
        // test terminates even if the gate keeps handing it the lock; the
        // short sleep lets the ingester and the storm interleave with it.
        {
            let (system, stop) = (&system, &stop);
            scope.spawn(move || {
                let mut cache = CostCache::new();
                let opts = SelfManageOptions::new(64 * 1024 * 1024);
                for _ in 0..64 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    reconcile_once(system.index(), system.profiler(), &opts, &mut cache).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }

        // Query storm: answers must always be internally rank-safe. Each
        // thread runs a fixed number of queries so the storm cannot starve
        // the ingester's write-gate acquisitions indefinitely.
        for t in 0..4 {
            let (system, stop, queries_run) = (&system, &stop, &queries_run);
            scope.spawn(move || {
                let engine = system.engine();
                for _ in 0..400 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = queries_run.fetch_add(1, Ordering::Relaxed) % QUERIES.len();
                    let got = engine
                        .evaluate(QUERIES[i], EvalOptions::new().k(Some(k)))
                        .unwrap_or_else(|e| panic!("thread {t}, query {i}: {e}"));
                    assert!(got.answers.len() <= k);
                    for w in got.answers.windows(2) {
                        assert!(
                            w[0].score >= w[1].score,
                            "thread {t}: answers out of rank order on query {i}"
                        );
                    }
                    // (sid, doc, end, length) is the identity of an answer
                    // row; distinct elements may share (doc, end) when a
                    // parent's span ends with its last child's.
                    let mut keys: Vec<_> = got
                        .answers
                        .iter()
                        .map(|a| (a.sid, a.element.doc, a.element.end, a.element.length))
                        .collect();
                    keys.sort_unstable();
                    keys.dedup();
                    assert_eq!(keys.len(), got.answers.len(), "duplicate answer elements");
                }
            });
        }

        let ids = ingester.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        assert_eq!(ids.len(), INGESTS);
    });
    assert!(queries_run.load(Ordering::Relaxed) > 8, "the storm queried");

    // Quiesced: every acknowledged ingest answers the matching query.
    let all = system.search(QUERIES[0], None).unwrap();
    for id in 32..(32 + INGESTS as u32) {
        assert!(
            all.answers.iter().any(|a| a.element.doc == id),
            "acknowledged doc {id} missing after the storm"
        );
    }

    // And a fold keeps the combined answers byte-identical.
    let before: Vec<_> = QUERIES
        .iter()
        .map(|q| system.search(q, None).unwrap().answers)
        .collect();
    let report = system.fold_once().unwrap().expect("delta non-empty");
    assert_eq!(report.docs_folded, INGESTS);
    assert!(system.index().delta().is_empty());
    for (q, pre) in QUERIES.iter().zip(&before) {
        assert_eq!(&system.search(q, None).unwrap().answers, pre, "{q}");
    }
    std::fs::remove_file(&store).ok();
}

/// With decay disabled the profiler is a pure counter, so feeding it a
/// counted stream through the real engine must reproduce exactly the
/// workload a user would have written by hand with those counts.
#[test]
fn profiled_stream_matches_handwritten_workload() {
    let (system, store) = build("determinism", 24);
    let profiler = WorkloadProfiler::new(ProfilerConfig {
        shards: 4,
        half_life: None,
        ..ProfilerConfig::default()
    });
    let engine = QueryEngine::new(system.index()).with_profiler(&profiler);
    let stream = [(QUERIES[0], 6usize), (QUERIES[1], 3), (QUERIES[2], 1)];
    for (nexi, count) in stream {
        for _ in 0..count {
            engine
                .evaluate(nexi, EvalOptions::new().k(Some(10)))
                .unwrap();
        }
    }

    let profiled = profiler.workload(8).expect("non-empty profile");
    let handwritten = Workload::from_weights(vec![
        (QUERIES[0].to_string(), 6.0, 10),
        (QUERIES[1].to_string(), 3.0, 10),
        (QUERIES[2].to_string(), 1.0, 10),
    ])
    .unwrap();
    assert_eq!(profiled.len(), handwritten.len());
    for (p, h) in profiled.queries().iter().zip(handwritten.queries()) {
        assert_eq!(p.nexi, h.nexi);
        assert_eq!(p.k, h.k);
        assert!(
            (p.frequency - h.frequency).abs() < 1e-12,
            "{}: {} vs {}",
            p.nexi,
            p.frequency,
            h.frequency
        );
    }
    std::fs::remove_file(&store).ok();
}

/// An empty profile must leave the store alone — reconciliation on a fresh
/// system is a no-op, not a drop-everything.
#[test]
fn reconcile_with_no_observations_is_a_no_op() {
    let (system, store) = build("noop", 24);
    system
        .materialize_for(QUERIES[0], trex::ListKind::Both)
        .unwrap();
    let before = system.index().rpls().unwrap().total_bytes().unwrap()
        + system.index().erpls().unwrap().total_bytes().unwrap();
    assert!(before > 0);

    let profiler = WorkloadProfiler::new(ProfilerConfig::default());
    let mut cache = CostCache::new();
    let report = reconcile_once(
        system.index(),
        &profiler,
        &SelfManageOptions::new(0),
        &mut cache,
    )
    .unwrap();
    assert_eq!(report.lists_dropped, 0);
    assert_eq!(report.lists_materialized, 0);
    assert_eq!(report.bytes_used, before, "lists untouched");
    std::fs::remove_file(&store).ok();
}

/// The background manager end to end: start it with a short interval, serve
/// queries, and watch it converge to a budget-respecting list set.
#[test]
fn background_manager_converges_and_stops_cleanly() {
    let (system, store) = build("manager", 32);
    let engine = system.engine();
    for _ in 0..6 {
        engine
            .evaluate(QUERIES[0], EvalOptions::new().k(Some(5)))
            .unwrap();
    }

    let budget = 64 * 1024 * 1024;
    let manager = system
        .start_self_manager(
            SelfManageOptions::new(budget).interval(std::time::Duration::from_millis(20)),
        )
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let report = loop {
        if let Some(report) = manager.last_report() {
            if report.lists_materialized > 0 {
                break report;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "manager never materialised: {:?}",
            manager.last_error()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert!(report.bytes_used <= budget);
    assert!(manager.last_error().is_none());
    manager.stop();

    // With the hot query's lists on disk, Auto now picks a top-k strategy.
    let explain = system
        .engine()
        .explain(QUERIES[0], EvalOptions::new().k(Some(5)))
        .unwrap();
    assert_ne!(explain.chosen, trex::Strategy::Era, "{explain:?}");
    std::fs::remove_file(&store).ok();
}
