//! Integration tests of the *online* self-managing layer: reconcile cycles
//! running concurrently with a multi-threaded query storm must never change
//! an answer, never surface a coverage error, and never exceed the budget.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{
    reconcile_once, CostCache, EvalOptions, ProfilerConfig, QueryEngine, SelfManageOptions,
    TrexConfig, TrexSystem, Workload, WorkloadProfiler,
};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-smo-{name}-{}.db", std::process::id()))
}

fn build(name: &str, docs: usize) -> (TrexSystem, std::path::PathBuf) {
    let store = temp(name);
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )
    .unwrap();
    (system, store)
}

const QUERIES: [&str; 4] = [
    "//article//sec[about(., xml query evaluation)]",
    "//sec[about(., code signing verification)]",
    "//article//sec[about(., model checking state space)]",
    "//article[about(., information retrieval ranking)]",
];

/// The tentpole guarantee: an 8-thread query storm runs while the
/// reconciler repeatedly re-plans under a *shifting* budget (generous →
/// tight → zero → generous). Every storm query must succeed and return
/// exactly the quiesced engine's answers — a query landing mid-reconcile
/// observes partial coverage and silently falls back to ERA, never errors —
/// and the registry must respect each cycle's budget.
#[test]
fn concurrent_storm_sees_quiesced_answers_while_budget_shifts() {
    let (system, store) = build("storm", 48);
    let k = Some(10);

    // Quiesced baseline, before any redundant list exists.
    let baseline: Vec<_> = QUERIES
        .iter()
        .map(|q| {
            system
                .engine()
                .evaluate(q, EvalOptions::new().k(k))
                .unwrap()
        })
        .collect();

    // Seed the profiler with a skewed stream so reconcile has a workload.
    let engine = system.engine();
    for (i, q) in QUERIES.iter().enumerate() {
        for _ in 0..(QUERIES.len() - i) * 2 {
            engine.evaluate(q, EvalOptions::new().k(k)).unwrap();
        }
    }

    let stop = AtomicBool::new(false);
    let storm_queries = AtomicUsize::new(0);
    let total_bytes = system.index().rpls().unwrap().total_bytes().unwrap()
        + system.index().erpls().unwrap().total_bytes().unwrap();
    assert_eq!(total_bytes, 0, "fresh build has no redundant lists");

    std::thread::scope(|scope| {
        for t in 0..8 {
            let (system, baseline) = (&system, &baseline);
            let (stop, storm_queries) = (&stop, &storm_queries);
            scope.spawn(move || {
                let engine = system.engine();
                while !stop.load(Ordering::Relaxed) {
                    let i = storm_queries.fetch_add(1, Ordering::Relaxed) % QUERIES.len();
                    let got = engine
                        .evaluate(QUERIES[i], EvalOptions::new().k(k))
                        .unwrap_or_else(|e| panic!("thread {t}, query {i}: {e}"));
                    assert_eq!(
                        got.answers, baseline[i].answers,
                        "thread {t}: answers drifted on query {i}"
                    );
                }
            });
        }

        // Reconcile through a budget shift while the storm runs.
        let mut cache = CostCache::new();
        let huge = 64 * 1024 * 1024;
        for budget in [huge, 4 * 1024, 0, huge] {
            let opts = SelfManageOptions::new(budget);
            let report =
                reconcile_once(system.index(), system.profiler(), &opts, &mut cache).unwrap();
            assert!(
                report.bytes_used <= budget,
                "cycle kept {} bytes over budget {budget}",
                report.bytes_used
            );
            assert!(!report.workload.is_empty(), "profiler fed the cycle");
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        storm_queries.load(Ordering::Relaxed) > 8,
        "the storm actually queried"
    );
    // The generous final cycle re-materialised lists for the hot shapes…
    let report_bytes = system.index().rpls().unwrap().total_bytes().unwrap()
        + system.index().erpls().unwrap().total_bytes().unwrap();
    assert!(report_bytes > 0, "final generous cycle kept lists");
    // …and the storm's Auto queries fell back to ERA whenever coverage was
    // missing (at minimum, every query before the first cycle finished).
    let counters = system.profiler().counters();
    assert!(
        counters.era_fallbacks.get() > 0,
        "ERA fallback was exercised"
    );
    assert_eq!(counters.cycles.get(), 4);
    std::fs::remove_file(&store).ok();
}

/// With decay disabled the profiler is a pure counter, so feeding it a
/// counted stream through the real engine must reproduce exactly the
/// workload a user would have written by hand with those counts.
#[test]
fn profiled_stream_matches_handwritten_workload() {
    let (system, store) = build("determinism", 24);
    let profiler = WorkloadProfiler::new(ProfilerConfig {
        shards: 4,
        half_life: None,
    });
    let engine = QueryEngine::new(system.index()).with_profiler(&profiler);
    let stream = [(QUERIES[0], 6usize), (QUERIES[1], 3), (QUERIES[2], 1)];
    for (nexi, count) in stream {
        for _ in 0..count {
            engine
                .evaluate(nexi, EvalOptions::new().k(Some(10)))
                .unwrap();
        }
    }

    let profiled = profiler.workload(8).expect("non-empty profile");
    let handwritten = Workload::from_weights(vec![
        (QUERIES[0].to_string(), 6.0, 10),
        (QUERIES[1].to_string(), 3.0, 10),
        (QUERIES[2].to_string(), 1.0, 10),
    ])
    .unwrap();
    assert_eq!(profiled.len(), handwritten.len());
    for (p, h) in profiled.queries().iter().zip(handwritten.queries()) {
        assert_eq!(p.nexi, h.nexi);
        assert_eq!(p.k, h.k);
        assert!(
            (p.frequency - h.frequency).abs() < 1e-12,
            "{}: {} vs {}",
            p.nexi,
            p.frequency,
            h.frequency
        );
    }
    std::fs::remove_file(&store).ok();
}

/// An empty profile must leave the store alone — reconciliation on a fresh
/// system is a no-op, not a drop-everything.
#[test]
fn reconcile_with_no_observations_is_a_no_op() {
    let (system, store) = build("noop", 24);
    system
        .materialize_for(QUERIES[0], trex::ListKind::Both)
        .unwrap();
    let before = system.index().rpls().unwrap().total_bytes().unwrap()
        + system.index().erpls().unwrap().total_bytes().unwrap();
    assert!(before > 0);

    let profiler = WorkloadProfiler::new(ProfilerConfig::default());
    let mut cache = CostCache::new();
    let report = reconcile_once(
        system.index(),
        &profiler,
        &SelfManageOptions::new(0),
        &mut cache,
    )
    .unwrap();
    assert_eq!(report.lists_dropped, 0);
    assert_eq!(report.lists_materialized, 0);
    assert_eq!(report.bytes_used, before, "lists untouched");
    std::fs::remove_file(&store).ok();
}

/// The background manager end to end: start it with a short interval, serve
/// queries, and watch it converge to a budget-respecting list set.
#[test]
fn background_manager_converges_and_stops_cleanly() {
    let (system, store) = build("manager", 32);
    let engine = system.engine();
    for _ in 0..6 {
        engine
            .evaluate(QUERIES[0], EvalOptions::new().k(Some(5)))
            .unwrap();
    }

    let budget = 64 * 1024 * 1024;
    let manager = system
        .start_self_manager(
            SelfManageOptions::new(budget).interval(std::time::Duration::from_millis(20)),
        )
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let report = loop {
        if let Some(report) = manager.last_report() {
            if report.lists_materialized > 0 {
                break report;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "manager never materialised: {:?}",
            manager.last_error()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert!(report.bytes_used <= budget);
    assert!(manager.last_error().is_none());
    manager.stop();

    // With the hot query's lists on disk, Auto now picks a top-k strategy.
    let explain = system
        .engine()
        .explain(QUERIES[0], EvalOptions::new().k(Some(5)))
        .unwrap();
    assert_ne!(explain.chosen, trex::Strategy::Era, "{explain:?}");
    std::fs::remove_file(&store).ok();
}
