//! `curl`-equivalent integration test of the live metrics surface:
//! `trex serve --metrics-addr` must answer `/metrics` with valid Prometheus
//! text exposition (cumulative, `+Inf`-terminated histogram buckets),
//! `/metrics.json` with well-formed JSON, and `/slow` with the span tree of
//! a deliberately slow query (threshold 0) whose begin/end pairs nest.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

fn trex() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trex"))
}

fn temp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("trex-metrics-{name}-{}.db", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// One short HTTP/1.1 GET; returns (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response: {response}"));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// A minimal structural JSON validator (the workspace has no JSON crate on
/// purpose): accepts exactly the RFC 8259 grammar, values discarded.
fn validate_json(text: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err(&self, what: &str) -> String {
            format!("{what} at byte {}", self.i)
        }
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected {:?}", c as char)))
            }
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.err("expected a value")),
            }
        }
        fn lit(&mut self, lit: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected {lit}")))
            }
        }
        fn object(&mut self) -> Result<(), String> {
            self.eat(b'{')?;
            self.ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                self.string()?;
                self.ws();
                self.eat(b':')?;
                self.value()?;
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected , or }")),
                }
            }
        }
        fn array(&mut self) -> Result<(), String> {
            self.eat(b'[')?;
            self.ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.value()?;
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected , or ]")),
                }
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(&c) = self.b.get(self.i) {
                match c {
                    b'"' => {
                        self.i += 1;
                        return Ok(());
                    }
                    b'\\' => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                self.i += 1
                            }
                            Some(b'u') => {
                                self.i += 1;
                                for _ in 0..4 {
                                    if !self.b.get(self.i).is_some_and(|c| c.is_ascii_hexdigit()) {
                                        return Err(self.err("bad \\u escape"));
                                    }
                                    self.i += 1;
                                }
                            }
                            _ => return Err(self.err("bad escape")),
                        }
                    }
                    0x00..=0x1f => return Err(self.err("raw control char in string")),
                    _ => self.i += 1,
                }
            }
            Err(self.err("unterminated string"))
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            while self.b.get(self.i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.i += 1;
            }
            if self.i == start {
                Err(self.err("empty number"))
            } else {
                Ok(())
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(())
}

/// Checks every `# TYPE <name> histogram` block, per labelset (the drift
/// histogram carries a `model` label, the latency histograms none):
/// cumulative non-decreasing buckets, a `+Inf` terminator, and `_count`
/// equal to the `+Inf` bucket. Returns how many histogram metrics were
/// checked.
fn validate_prometheus_histograms(text: &str) -> usize {
    #[derive(Default)]
    struct Series {
        last: u64,
        inf: Option<u64>,
        count: Option<u64>,
        has_sum: bool,
    }
    // Splits `model="x",le="+Inf"} 5` into the labelset key (labels minus
    // `le`), the `le` bound, and the sample value.
    fn split_bucket(rest: &str, line: &str) -> (String, String, u64) {
        let (labels, value) = rest
            .split_once("\"} ")
            .unwrap_or_else(|| panic!("malformed bucket line: {line}"));
        let at = labels
            .find("le=\"")
            .unwrap_or_else(|| panic!("bucket without le label: {line}"));
        let key = labels[..at].trim_end_matches(',').to_string();
        let le = labels[at + 4..].to_string();
        let value = value
            .parse()
            .unwrap_or_else(|_| panic!("non-integer bucket count: {line}"));
        (key, le, value)
    }
    // Splits a `_count`/`_sum` sample — `rest` is either ` 5` (unlabelled)
    // or `{model="x"} 5` — into the labelset key and the raw value text.
    fn split_scalar<'a>(rest: &'a str, line: &str) -> (String, &'a str) {
        if let Some(r) = rest.strip_prefix('{') {
            let (labels, value) = r
                .split_once("} ")
                .unwrap_or_else(|| panic!("malformed labelled sample: {line}"));
            (labels.to_string(), value)
        } else {
            (String::new(), rest.trim_start())
        }
    }
    let lines: Vec<&str> = text.lines().collect();
    let mut checked = 0;
    for (i, line) in lines.iter().enumerate() {
        let Some(rest) = line.strip_prefix("# TYPE ") else {
            continue;
        };
        let Some(name) = rest.strip_suffix(" histogram") else {
            continue;
        };
        let mut series: std::collections::BTreeMap<String, Series> = Default::default();
        for l in &lines[i + 1..] {
            if l.starts_with("# TYPE ") {
                break;
            }
            if let Some(rest) = l.strip_prefix(&format!("{name}_bucket{{")) {
                let (key, le, value) = split_bucket(rest, l);
                let s = series.entry(key).or_default();
                assert!(
                    value >= s.last,
                    "{name}: bucket le={le} value {value} < previous {}",
                    s.last
                );
                assert!(s.inf.is_none(), "{name}: bucket after +Inf: {l}");
                s.last = value;
                if le == "+Inf" {
                    s.inf = Some(value);
                }
            } else if let Some(rest) = l.strip_prefix(&format!("{name}_count")) {
                let (key, value) = split_scalar(rest, l);
                series.entry(key).or_default().count = Some(value.parse().expect("count"));
            } else if let Some(rest) = l.strip_prefix(&format!("{name}_sum")) {
                let (key, _) = split_scalar(rest, l);
                series.entry(key).or_default().has_sum = true;
            }
        }
        assert!(!series.is_empty(), "{name}: no samples under its # TYPE");
        for (key, s) in &series {
            let inf = s
                .inf
                .unwrap_or_else(|| panic!("{name}{{{key}}}: no +Inf bucket"));
            let count = s
                .count
                .unwrap_or_else(|| panic!("{name}{{{key}}}: no _count"));
            assert_eq!(inf, count, "{name}{{{key}}}: +Inf bucket must equal _count");
            assert!(s.has_sum, "{name}{{{key}}}: no _sum");
        }
        checked += 1;
    }
    checked
}

/// Pulls a `"field":<digits>` value out of a known-shape JSON object slice.
fn field_u64(obj: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":");
    let at = obj
        .find(&pat)
        .unwrap_or_else(|| panic!("no {field} in {obj}"));
    obj[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {field} in {obj}"))
}

fn field_str<'a>(obj: &'a str, field: &str) -> &'a str {
    let pat = format!("\"{field}\":\"");
    let at = obj
        .find(&pat)
        .unwrap_or_else(|| panic!("no {field} in {obj}"));
    let rest = &obj[at + pat.len()..];
    &rest[..rest.find('"').expect("closing quote")]
}

#[test]
fn serve_metrics_endpoint_end_to_end() {
    let store = temp("serve");
    let _ = std::fs::remove_file(&store);
    let build = trex()
        .args(["build", &store, "--synthetic", "ieee", "--docs", "40"])
        .output()
        .expect("build store");
    assert!(build.status.success(), "{build:?}");

    // Port 0: the OS picks; the bound address is announced on stderr.
    let mut child = trex()
        .args([
            "serve",
            &store,
            "-k",
            "3",
            "--metrics-addr",
            "127.0.0.1:0",
            "--slow-ms",
            "0", // every query is "slow": deterministic /slow content
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn trex serve");

    let mut stdin = child.stdin.take().unwrap();
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            stderr.read_line(&mut line).expect("read stderr") > 0,
            "serve exited before announcing the metrics endpoint"
        );
        if let Some(addr) = line.trim().strip_prefix("metrics: listening on ") {
            break addr.to_string();
        }
    };

    let (status, body) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // Run one query and wait for its status line so its latency is in the
    // histograms and its span tree is in the slow log before we scrape.
    let query = "//article//sec[about(., xml query evaluation)]";
    writeln!(stdin, "{query}").unwrap();
    stdin.flush().unwrap();
    loop {
        line.clear();
        assert!(
            stderr.read_line(&mut line).expect("read stderr") > 0,
            "serve exited before answering the query"
        );
        if line.contains("answers in") {
            break;
        }
    }

    // /metrics: valid Prometheus text exposition.
    let (status, prom) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let histograms = validate_prometheus_histograms(&prom);
    assert!(
        histograms >= 15,
        "expected the full histogram surface, checked only {histograms}"
    );
    assert!(prom.contains("# TYPE trex_query_query_seconds histogram"));
    assert!(
        prom.contains("trex_query_query_seconds_count 1"),
        "the served query must be counted:\n{prom}"
    );
    assert!(prom.contains("# TYPE trex_storage_page_read_seconds histogram"));
    assert!(prom.contains("# TYPE trex_storage_pool_hits_total counter"));

    // /metrics.json: well-formed JSON with the same groups.
    let (status, json) = http_get(&addr, "/metrics.json");
    assert!(status.contains("200"), "{status}");
    validate_json(&json).unwrap_or_else(|e| panic!("/metrics.json invalid: {e}\n{json}"));
    assert!(json.contains("\"histograms\":{\"storage\":{"), "{json}");
    assert!(json.contains("\"slow_queries\":1"), "{json}");

    // /slow: the query is there (threshold 0), with a nesting span tree.
    let (status, slow) = http_get(&addr, "/slow");
    assert!(status.contains("200"), "{status}");
    validate_json(&slow).unwrap_or_else(|e| panic!("/slow invalid: {e}\n{slow}"));
    assert!(
        slow.contains("xml query evaluation"),
        "slow log must carry the NEXI text: {slow}"
    );
    assert!(slow.contains("\"strategy\":\"era\""), "{slow}");

    // Cut the spans array out (span objects contain no brackets) and check
    // begin/end pairing with a stack, exactly like a trace viewer would.
    let spans_at = slow.find("\"spans\":[").expect("spans array");
    let spans = &slow[spans_at + "\"spans\":[".len()..];
    let spans = &spans[..spans.find(']').expect("spans array end")];
    let mut stack: Vec<(u64, u64)> = Vec::new(); // (id, parent)
    let mut names = Vec::new();
    let mut events = 0;
    for obj in spans.split("},{") {
        events += 1;
        let id = field_u64(obj, "id");
        let parent = field_u64(obj, "parent");
        let name = field_str(obj, "name");
        match field_str(obj, "kind") {
            "begin" => {
                let enclosing = stack.last().map(|&(id, _)| id).unwrap_or(parent);
                assert_eq!(
                    parent, enclosing,
                    "span {name} begins under {parent} but {enclosing} is open"
                );
                stack.push((id, parent));
                names.push(name.to_string());
            }
            "end" => {
                let (open, _) = stack
                    .pop()
                    .unwrap_or_else(|| panic!("end of {name} with no span open"));
                assert_eq!(open, id, "end of {name} does not close the innermost span");
            }
            other => panic!("unknown kind {other}"),
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");
    assert!(events >= 4, "expected a tree, got {events} events: {spans}");
    assert_eq!(names.first().map(String::as_str), Some("query"));
    assert!(
        names.iter().any(|n| n == "translate"),
        "translate child span: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("evaluate:")),
        "evaluate child span: {names:?}"
    );

    let (status, _) = http_get(&addr, "/nope");
    assert!(status.contains("404"), "{status}");

    drop(stdin); // EOF ends the REPL
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "{status:?}");
    std::fs::remove_file(&store).ok();
}
