//! End-to-end tests of the query-serving HTTP front end: answer
//! correctness under concurrency (HTTP answers must equal direct engine
//! evaluation), the generation-keyed result cache (hit on repeat, miss
//! after a reconcile bumps the generation), bounded-queue admission
//! control (`429` at saturation, counter-asserted), cooperative deadlines
//! (`408`), and request-framing robustness (`400`/`405`/`404`/`411`/`413`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use trex::obs::JsonValue;
use trex::{
    reconcile_once, CostCache, EvalOptions, HttpServerConfig, SelfManageOptions, TrexConfig,
    TrexSystem,
};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-http-serve-{name}-{}.db", std::process::id()))
}

fn cleanup(path: &std::path::Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trex::storage::wal_path(path)).ok();
}

fn build_system(path: &std::path::Path) -> TrexSystem {
    let docs: Vec<String> = (0..40)
        .map(|i| {
            let topic = ["xml", "retrieval", "index", "summary", "keyword"][i % 5];
            format!(
                "<article><sec>{topic} evaluation w{i}</sec><sec>cat dog {topic}</sec></article>"
            )
        })
        .collect();
    TrexSystem::build(TrexConfig::new(path), docs).expect("build system")
}

/// One HTTP/1.1 request; returns (status line, headers, body).
fn http_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    content_length: Option<usize>,
) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    if let Some(len) = content_length {
        request.push_str(&format!("Content-Length: {len}\r\n"));
    }
    request.push_str("\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response: {response}"));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, head.to_string(), body.to_string())
}

fn post_query(addr: std::net::SocketAddr, body: &str) -> (String, JsonValue) {
    let (status, _, body) = http_request(addr, "POST", "/v1/query", Some(body), Some(body.len()));
    let value = trex::obs::parse_json(&body)
        .unwrap_or_else(|e| panic!("non-JSON response body {body:?}: {e}"));
    (status, value)
}

/// `(doc, start, end, sid, score)` — scores travel as
/// shortest-representation `f32` decimals, so compare as `f32`.
type AnswerTuple = (u64, u64, u64, u64, f32);

fn answer_tuples(response: &JsonValue) -> Vec<AnswerTuple> {
    let JsonValue::Array(answers) = response.get("answers").expect("answers field") else {
        panic!("answers is not an array");
    };
    answers
        .iter()
        .map(|a| {
            (
                a.get("doc").unwrap().as_u64().unwrap(),
                a.get("start").unwrap().as_u64().unwrap(),
                a.get("end").unwrap().as_u64().unwrap(),
                a.get("sid").unwrap().as_u64().unwrap(),
                a.get("score").unwrap().as_f64().unwrap() as f32,
            )
        })
        .collect()
}

#[test]
fn concurrent_clients_get_engine_identical_answers() {
    let path = temp("concurrent");
    let system = build_system(&path);
    let queries = [
        "//article//sec[about(., xml)]",
        "//article//sec[about(., retrieval evaluation)]",
        "//article//sec[about(., cat dog)]",
        "//article//sec[about(., summary)]",
    ];
    // Direct engine evaluation is the ground truth.
    let engine = system.engine();
    let expected: Vec<Vec<AnswerTuple>> = queries
        .iter()
        .map(|q| {
            engine
                .evaluate(q, EvalOptions::new().k(Some(10)))
                .unwrap()
                .answers
                .iter()
                .map(|a| {
                    (
                        u64::from(a.element.doc),
                        u64::from(a.element.start()),
                        u64::from(a.element.end),
                        u64::from(a.sid),
                        a.score,
                    )
                })
                .collect()
        })
        .collect();

    let server = system
        .serve_http(
            "127.0.0.1:0",
            HttpServerConfig {
                workers: 4,
                queue_depth: 256,
                ..HttpServerConfig::default()
            },
        )
        .expect("start http server");
    let addr = server.addr();

    // 64 concurrent clients, 16 per query.
    let mismatches = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..64 {
            let query = queries[client % queries.len()];
            let want = &expected[client % queries.len()];
            handles.push(scope.spawn(move || {
                let body = format!("{{\"nexi\": {:?}, \"k\": 10}}", query);
                let (status, response) = post_query(addr, &body);
                if !status.contains("200") {
                    return Some(format!("client {client}: status {status}"));
                }
                if response.get("v").unwrap().as_u64() != Some(1) {
                    return Some(format!("client {client}: bad envelope version"));
                }
                let got = answer_tuples(&response);
                (&got != want).then(|| format!("client {client}: {got:?} != {want:?}"))
            }));
        }
        handles
            .into_iter()
            .filter_map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    assert!(mismatches.is_empty(), "{mismatches:?}");

    // Every request was admitted; none shed, none errored.
    let snap = system.serve_metrics().counters.snapshot();
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.admitted, 64);
    assert_eq!(snap.internal_errors, 0);

    server.stop();
    cleanup(&path);
}

#[test]
fn repeat_query_hits_cache_until_reconcile_bumps_generation() {
    let path = temp("cache");
    let system = build_system(&path);
    let server = system
        .serve_http("127.0.0.1:0", HttpServerConfig::default())
        .expect("start http server");
    let addr = server.addr();
    let body = r#"{"nexi": "//article//sec[about(., xml)]", "k": 5}"#;

    let (status, first) = post_query(addr, body);
    assert!(status.contains("200"), "{status}");
    assert_eq!(first.get("cache").unwrap().as_str(), Some("miss"));

    let (_, second) = post_query(addr, body);
    assert_eq!(second.get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(answer_tuples(&second), answer_tuples(&first));
    assert_eq!(
        second.get("generation").unwrap().as_u64(),
        first.get("generation").unwrap().as_u64()
    );
    // A spelling variant of the same query normalizes to the same key.
    let variant = r#"{"nexi": "  //article//sec[about(.,   XML)]", "k": 5}"#;
    let (_, third) = post_query(addr, variant);
    assert_eq!(third.get("cache").unwrap().as_str(), Some("hit"));

    // Reconcile: materialise redundant lists for the observed workload.
    // The write gate bumps the maintenance generation, which invalidates
    // every cached result without touching the cache itself. (Cache hits
    // skip the engine, so reinforce the profiled workload directly —
    // engine-path queries bypass the service and leave cache counters
    // untouched.)
    let engine = system.engine();
    for _ in 0..4 {
        engine
            .evaluate(
                "//article//sec[about(., xml)]",
                EvalOptions::new().k(Some(5)),
            )
            .expect("seed profiler");
    }
    let before = system.index().maintenance().generation();
    let report = reconcile_once(
        system.index(),
        system.profiler(),
        &SelfManageOptions::new(64 * 1024 * 1024),
        &mut CostCache::new(),
    )
    .expect("reconcile");
    assert!(
        report.lists_materialized > 0,
        "reconcile materialised nothing; generation would not move"
    );
    let after = system.index().maintenance().generation();
    assert!(after > before, "generation did not advance");

    let (_, fourth) = post_query(addr, body);
    assert_eq!(fourth.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(fourth.get("generation").unwrap().as_u64(), Some(after));
    // Same index content, so the answers themselves are unchanged.
    assert_eq!(answer_tuples(&fourth), answer_tuples(&first));

    let snap = system.serve_metrics().counters.snapshot();
    assert_eq!(snap.cache_hits, 2);
    assert_eq!(snap.cache_misses, 2);

    server.stop();
    cleanup(&path);
}

#[test]
fn saturated_queue_sheds_with_429_and_retry_after() {
    let path = temp("shed");
    let system = build_system(&path);
    // One worker, one queue slot, short I/O timeout: two idle connections
    // saturate the server (one held by the worker, one queued); the third
    // must be shed at the door.
    let server = system
        .serve_http(
            "127.0.0.1:0",
            HttpServerConfig {
                workers: 1,
                queue_depth: 1,
                io_timeout: Duration::from_secs(2),
                ..HttpServerConfig::default()
            },
        )
        .expect("start http server");
    let addr = server.addr();
    let serve = system.serve_metrics();

    // First idle connection: admitted, then dequeued by the worker (which
    // blocks reading it). Wait for the dequeue so the queue is empty again.
    let conn_a = TcpStream::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while serve.queue_depth.get() != 0 || serve.counters.admitted.get() < 1 {
        assert!(Instant::now() < deadline, "worker never picked up conn A");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Second idle connection: admitted, stays queued (worker is busy).
    let conn_b = TcpStream::connect(addr).unwrap();
    while serve.counters.admitted.get() < 2 {
        assert!(Instant::now() < deadline, "conn B never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(serve.queue_depth.get(), 1);

    // Third connection: the queue is full — shed, deterministically.
    let mut conn_c = TcpStream::connect(addr).unwrap();
    conn_c
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    conn_c.read_to_string(&mut response).expect("shed response");
    let (head, body) = response.split_once("\r\n\r\n").expect("shed head/body");
    assert!(
        head.starts_with("HTTP/1.1 429"),
        "expected 429, got: {head}"
    );
    assert!(head.contains("Retry-After: 1"), "{head}");
    let error = trex::obs::parse_json(body).expect("shed body is JSON");
    assert_eq!(error.get("code").unwrap().as_str(), Some("overloaded"));
    assert_eq!(error.get("retryable").unwrap().as_bool(), Some(true));

    // Counter-assert: exactly one shed, exactly two admitted.
    let snap = serve.counters.snapshot();
    assert_eq!(snap.shed, 1, "shed counter");
    assert_eq!(snap.admitted, 2, "admitted counter");

    drop(conn_a);
    drop(conn_b);
    server.stop();
    cleanup(&path);
}

#[test]
fn expired_deadline_answers_408() {
    let path = temp("deadline");
    let system = build_system(&path);
    let server = system
        .serve_http("127.0.0.1:0", HttpServerConfig::default())
        .expect("start http server");
    let addr = server.addr();

    let body = r#"{"nexi": "//article//sec[about(., xml)]", "k": 5, "deadline_ms": 0}"#;
    let (status, error) = post_query(addr, body);
    assert!(status.contains("408"), "{status}");
    assert_eq!(
        error.get("code").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    assert_eq!(error.get("retryable").unwrap().as_bool(), Some(true));
    assert_eq!(
        system.serve_metrics().counters.snapshot().deadline_exceeded,
        1
    );

    // A traced request reports bypass (traces are never cached).
    let body = r#"{"nexi": "//article//sec[about(., xml)]", "k": 5, "trace": true}"#;
    let (status, response) = post_query(addr, body);
    assert!(status.contains("200"), "{status}");
    assert_eq!(response.get("cache").unwrap().as_str(), Some("bypass"));
    assert!(response.get("trace").is_some(), "trace attached");

    server.stop();
    cleanup(&path);
}

#[test]
fn malformed_requests_get_structured_errors() {
    let path = temp("robust");
    let system = build_system(&path);
    let server = system
        .serve_http(
            "127.0.0.1:0",
            HttpServerConfig {
                max_body_bytes: 1024,
                ..HttpServerConfig::default()
            },
        )
        .expect("start http server");
    let addr = server.addr();

    // Unparsable JSON → 400.
    let (status, _, body) = http_request(
        addr,
        "POST",
        "/v1/query",
        Some("not json"),
        Some("not json".len()),
    );
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("bad_request"), "{body}");

    // Valid JSON, missing nexi → 400 naming the field.
    let (status, _, body) = http_request(addr, "POST", "/v1/query", Some(r#"{"k": 5}"#), Some(8));
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("nexi"), "{body}");

    // Unparsable NEXI → 400 query_error.
    let broken = r#"{"nexi": "//a[about(., )]]]"}"#;
    let (status, _, body) =
        http_request(addr, "POST", "/v1/query", Some(broken), Some(broken.len()));
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("query_error"), "{body}");

    // POST without Content-Length → 411.
    let (status, _, body) = http_request(addr, "POST", "/v1/query", Some("{}"), None);
    assert!(status.contains("411"), "{status}");
    assert!(body.contains("length_required"), "{body}");

    // Content-Length over the cap → 413 (without sending the body).
    let (status, _, body) = http_request(addr, "POST", "/v1/query", None, Some(10_000_000));
    assert!(status.contains("413"), "{status}");
    assert!(body.contains("payload_too_large"), "{body}");

    // GET on /query → 405; unknown route → 404.
    let (status, _, body) = http_request(addr, "GET", "/v1/query", None, None);
    assert!(status.contains("405"), "{status}");
    assert!(body.contains("method_not_allowed"), "{body}");
    let (status, _, _) = http_request(addr, "GET", "/v1/nope", None, None);
    assert!(status.contains("404"), "{status}");

    // The unversioned alias answers queries too, and the GET surface is up.
    let ok = r#"{"nexi": "//article//sec[about(., xml)]"}"#;
    let (status, _, _) = http_request(addr, "POST", "/query", Some(ok), Some(ok.len()));
    assert!(status.contains("200"), "{status}");
    let (status, _, body) = http_request(addr, "GET", "/v1/healthz", None, None);
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");
    let (status, _, body) = http_request(addr, "GET", "/v1/metrics", None, None);
    assert!(status.contains("200"), "{status}");
    assert!(
        body.contains("trex_serve_admitted_total"),
        "serve counters exported"
    );

    server.stop();
    cleanup(&path);
}
