//! Concurrency stress tests for the sharded buffer pool: many threads
//! performing pin / evict / free churn on a capacity-constrained pool must
//! lose no page images (in cache or on disk) and must keep the per-shard
//! cache counters summing *exactly* to the pool-level totals.
//!
//! The page payload protocol: every long-lived page stores a version number
//! in its `next_page` header field. Each page has exactly one owner thread;
//! the owner increments the version once per round, so the final on-disk
//! value must equal the round count — any torn update, lost write-back, or
//! aliased page image shows up as a wrong version.

use std::sync::atomic::{AtomicU64, Ordering};

use trex::storage::buffer::BufferPool;
use trex::storage::page::{PageBuf, PageId, PageType};
use trex::storage::pager::Pager;

const THREADS: usize = 8;
const PAGES: usize = 256;
const ROUNDS: u32 = 30;

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-conc-{name}-{}.db", std::process::id()))
}

#[test]
fn eight_thread_pin_evict_free_churn_loses_nothing() {
    let path = temp("churn");
    let pager = Pager::create(&path).unwrap();
    // 8 shards × 8 pages: far below the 256-page working set, so every
    // round is dominated by evictions and dirty write-backs.
    let pool = BufferPool::with_shards(pager, 64, THREADS);
    assert_eq!(pool.shard_count(), THREADS);

    // Build the working set: PAGES pages, version 0, all dirty.
    let ids: Vec<PageId> = (0..PAGES)
        .map(|_| {
            let (id, page) = pool.allocate().unwrap();
            {
                let mut buf = page.buf.write();
                buf.init(PageType::Leaf);
                buf.set_next_page(0);
            }
            page.mark_dirty();
            id
        })
        .collect();

    let total_fetches = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            let ids = &ids;
            let total_fetches = &total_fetches;
            s.spawn(move || {
                let owned: Vec<PageId> = ids
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % THREADS == t)
                    .map(|(_, id)| id)
                    .collect();
                let mut fetches = 0u64;
                let mut rng = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1);
                for round in 0..ROUNDS {
                    // Writer churn: bump the version of every owned page.
                    for &id in &owned {
                        let page = pool.fetch(id).unwrap();
                        fetches += 1;
                        {
                            let mut buf = page.buf.write();
                            let v = buf.next_page();
                            assert_eq!(v, round, "page {id}: lost an update");
                            buf.set_next_page(v + 1);
                        }
                        page.mark_dirty();
                    }

                    // Pin churn: hold one page across foreign reads; the
                    // pinned frame must not be evicted while held.
                    let pinned_id = owned[round as usize % owned.len()];
                    let pin = pool.fetch(pinned_id).unwrap();
                    fetches += 1;
                    for _ in 0..8 {
                        rng = rng
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let id = ids[(rng >> 33) as usize % PAGES];
                        let page = pool.fetch(id).unwrap();
                        fetches += 1;
                        let v = page.buf.read().next_page();
                        assert!(v <= ROUNDS, "page {id}: corrupt version {v}");
                    }
                    let again = pool.fetch(pinned_id).unwrap();
                    fetches += 1;
                    assert!(
                        std::sync::Arc::ptr_eq(&pin, &again),
                        "pinned page {pinned_id} was evicted while held"
                    );
                    drop((pin, again));

                    // Free churn: allocate a scratch page, dirty it, return
                    // it to the free list (possibly reused by a neighbour).
                    let (scratch_id, scratch) = pool.allocate().unwrap();
                    {
                        let mut buf = scratch.buf.write();
                        buf.init(PageType::Leaf);
                        buf.set_next_page(0xDEAD);
                    }
                    scratch.mark_dirty();
                    drop(scratch);
                    pool.free(scratch_id).unwrap();
                }
                total_fetches.fetch_add(fetches, Ordering::Relaxed);
            });
        }
    });

    // Exact accounting: every fetch was either a hit or a miss, and the
    // per-shard counters sum to the pool-level totals — no event lost.
    let (hits, misses) = pool.cache_counters();
    assert_eq!(hits + misses, total_fetches.load(Ordering::Relaxed));
    let shards = pool.shard_counters();
    let evictions: u64 = pool.counters().pool_evictions.get();
    assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), hits);
    assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), misses);
    assert_eq!(shards.iter().map(|s| s.evictions).sum::<u64>(), evictions);
    assert!(evictions > 0, "working set never pressured the pool");
    assert!(
        pool.cached_pages() <= pool.capacity(),
        "pool over capacity with no pins held"
    );

    // No page lost in cache: every owned page reads back its final version.
    for &id in &ids {
        let page = pool.fetch(id).unwrap();
        assert_eq!(page.buf.read().next_page(), ROUNDS, "page {id} in cache");
    }

    // No page lost on disk: flush, reopen the raw file, check every image.
    pool.flush().unwrap();
    drop(pool);
    let mut pager = Pager::open(&path).unwrap();
    for &id in &ids {
        let mut buf = PageBuf::zeroed();
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf.next_page(), ROUNDS, "page {id} on disk");
    }
    std::fs::remove_file(&path).ok();
}

/// Pins can exceed a shard's capacity: eviction skips pinned frames and the
/// shard grows temporarily, shrinking back once the pins drop.
#[test]
fn pinned_pages_survive_capacity_pressure() {
    let path = temp("pins");
    let pager = Pager::create(&path).unwrap();
    // Single shard of 8 pages so every page contends for the same stripe.
    let pool = BufferPool::with_shards(pager, 8, 1);

    let ids: Vec<PageId> = (0..24)
        .map(|_| {
            let (id, page) = pool.allocate().unwrap();
            page.buf.write().init(PageType::Leaf);
            page.mark_dirty();
            id
        })
        .collect();

    // Pin more pages than the shard holds; fetching the rest forces the
    // shard past capacity instead of evicting a pinned frame.
    let pins: Vec<_> = ids[..12]
        .iter()
        .map(|&id| pool.fetch(id).unwrap())
        .collect();
    for &id in &ids[12..] {
        pool.fetch(id).unwrap();
    }
    assert!(pool.cached_pages() > pool.capacity());
    for (pin, &id) in pins.iter().zip(&ids[..12]) {
        let again = pool.fetch(id).unwrap();
        assert!(std::sync::Arc::ptr_eq(pin, &again));
    }

    // With the pins gone, churning the remaining pages drains the excess.
    drop(pins);
    for &id in &ids[12..] {
        pool.fetch(id).unwrap();
    }
    assert!(pool.cached_pages() <= pool.capacity());
    std::fs::remove_file(&path).ok();
}
