//! End-to-end tests of the `trex` command-line binary, driven through
//! `CARGO_BIN_EXE_trex` (no extra dependencies).

use std::process::Command;

fn trex() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trex"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = trex().args(args).output().expect("spawn trex");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("trex-cli-{name}-{}.db", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn full_cli_round_trip() {
    let store = temp("roundtrip");
    let _ = std::fs::remove_file(&store);

    // build
    let (ok, _, err) = run(&[
        "build",
        &store,
        "--synthetic",
        "ieee",
        "--docs",
        "40",
        "--store-docs",
    ]);
    assert!(ok, "build failed: {err}");
    assert!(err.contains("40 documents"), "{err}");

    // info
    let (ok, out, _) = run(&["info", &store]);
    assert!(ok);
    assert!(out.contains("documents        40"), "{out}");
    assert!(out.contains("summary"), "{out}");

    // query (ERA via auto)
    let query = "//article//sec[about(., xml query evaluation)]";
    let (ok, out, err) = run(&["query", &store, query, "-k", "3", "--snippets"]);
    assert!(ok, "{err}");
    assert!(err.contains("strategy ERA"), "{err}");
    assert!(out.contains("score"), "{out}");
    assert!(
        out.contains("<sec>") || out.contains("<ss"),
        "snippets shown: {out}"
    );

    // explain before materialisation
    let (ok, out, _) = run(&["explain", &store, query]);
    assert!(ok);
    assert!(out.contains("RPLs materialised:  false"), "{out}");
    assert!(out.contains("auto would run:     Era"), "{out}");

    // materialize + TA + race
    let (ok, _, err) = run(&["materialize", &store, query]);
    assert!(ok, "{err}");
    let (ok, _, err) = run(&["query", &store, query, "-k", "3", "--strategy", "ta"]);
    assert!(ok, "{err}");
    assert!(err.contains("strategy TA"), "{err}");
    let (ok, _, err) = run(&["query", &store, query, "-k", "3", "--strategy", "race"]);
    assert!(ok, "{err}");
    assert!(err.contains("Race ("), "{err}");

    // advise
    let workload = std::env::temp_dir().join(format!("trex-cli-wl-{}.txt", std::process::id()));
    std::fs::write(&workload, format!("1 10 {query}\n")).unwrap();
    let (ok, out, err) = run(&[
        "advise",
        &store,
        "--workload",
        workload.to_str().unwrap(),
        "--budget",
        "10000000",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("kept"), "{out}");

    std::fs::remove_file(&store).ok();
    std::fs::remove_file(&workload).ok();
}

#[test]
fn cli_reports_errors_cleanly() {
    // Unknown store file.
    let (ok, _, err) = run(&["query", "/nonexistent/trex.db", "//a[about(., x)]"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");

    // Malformed query.
    let store = temp("badquery");
    // 40 docs: large enough that the query terms below exist in the
    // dictionary (an unknown term makes the TA coverage check vacuous and
    // TA legitimately returns an empty result instead of erroring).
    let (ok, _, _) = run(&["build", &store, "--synthetic", "ieee", "--docs", "40"]);
    assert!(ok);
    let (ok, _, err) = run(&["query", &store, "not a query"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");

    // TA without materialised lists.
    let (ok, _, err) = run(&[
        "query",
        &store,
        "//article//sec[about(., xml)]",
        "--strategy",
        "ta",
    ]);
    assert!(!ok);
    assert!(err.contains("RPL"), "{err}");

    std::fs::remove_file(&store).ok();
}

#[test]
fn cli_help_lists_commands() {
    let (ok, out, _) = run(&[]);
    assert!(ok);
    for cmd in [
        "build",
        "info",
        "query",
        "explain",
        "materialize",
        "advise",
        "serve",
        "stats",
        "--metrics-addr",
        "--slow-ms",
    ] {
        assert!(out.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn serve_answers_piped_queries_while_self_managing() {
    use std::io::Write;
    use std::process::Stdio;

    let store = temp("serve");
    let _ = std::fs::remove_file(&store);
    let (ok, _, err) = run(&["build", &store, "--synthetic", "ieee", "--docs", "40"]);
    assert!(ok, "build failed: {err}");

    let mut child = trex()
        .args([
            "serve",
            &store,
            "-k",
            "3",
            "--self-manage",
            "--budget",
            "67108864",
            "--interval-ms",
            "50",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn trex serve");
    {
        let mut stdin = child.stdin.take().unwrap();
        for _ in 0..8 {
            writeln!(stdin, "//article//sec[about(., xml query evaluation)]").unwrap();
        }
        writeln!(stdin, "not a query").unwrap();
        writeln!(stdin, "//sec[about(., code signing verification)]").unwrap();
    } // drop stdin: EOF ends the loop
    let out = child.wait_with_output().expect("serve exits on EOF");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("score"), "answers printed: {stdout}");
    assert!(stderr.contains("self-manager running"), "{stderr}");
    assert!(stderr.contains("answers in"), "status lines: {stderr}");
    assert!(stderr.contains("error:"), "bad query reported: {stderr}");
    assert!(stderr.contains("profiled"), "profiler visible: {stderr}");
    // The per-query status line surfaces the latency histogram and the
    // fallback rate alongside the counters.
    assert!(
        stderr.contains("p50") && stderr.contains("p99"),
        "latency percentiles in status line: {stderr}"
    );
    assert!(
        stderr.contains("era fallback rate"),
        "fallback rate in status line: {stderr}"
    );
    std::fs::remove_file(&store).ok();
}

#[test]
fn serve_stats_command_dumps_metrics_json() {
    use std::io::Write;
    use std::process::Stdio;

    let store = temp("serve-stats");
    let _ = std::fs::remove_file(&store);
    let (ok, _, err) = run(&["build", &store, "--synthetic", "ieee", "--docs", "40"]);
    assert!(ok, "build failed: {err}");

    let mut child = trex()
        .args(["serve", &store, "-k", "3"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn trex serve");
    {
        let mut stdin = child.stdin.take().unwrap();
        writeln!(stdin, "//article//sec[about(., xml query evaluation)]").unwrap();
        writeln!(stdin, "stats").unwrap();
        writeln!(stdin, "slow").unwrap();
    }
    let out = child.wait_with_output().expect("serve exits on EOF");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"histograms\":{\"storage\":{"),
        "stats REPL command dumps the registry: {stdout}"
    );
    assert!(
        stdout.contains("\"query\":{\"query\":{\"count\":1"),
        "the query latency landed in the histogram: {stdout}"
    );
    assert!(
        stdout.contains("\"threshold_ns\":"),
        "slow REPL command dumps the slow log: {stdout}"
    );
    std::fs::remove_file(&store).ok();
}

#[test]
fn stats_subcommand_renders_json_and_prometheus() {
    let store = temp("stats");
    let _ = std::fs::remove_file(&store);
    let (ok, _, err) = run(&["build", &store, "--synthetic", "ieee", "--docs", "40"]);
    assert!(ok, "build failed: {err}");

    let (ok, out, err) = run(&["stats", &store]);
    assert!(ok, "{err}");
    assert!(out.starts_with("{\"counters\":{\"storage\":{"), "{out}");
    assert!(out.contains("\"slow_queries\":0"), "{out}");

    let (ok, out, err) = run(&["stats", &store, "--prometheus"]);
    assert!(ok, "{err}");
    assert!(
        out.contains("# TYPE trex_storage_page_reads_total counter"),
        "{out}"
    );
    assert!(
        out.contains("# TYPE trex_storage_page_read_seconds histogram"),
        "{out}"
    );
    // Opening the store reads pages, so the read histogram is populated
    // and properly +Inf-terminated.
    assert!(
        out.contains("trex_storage_page_read_seconds_bucket{le=\"+Inf\"}"),
        "{out}"
    );
    std::fs::remove_file(&store).ok();
}
