//! The complete paper pipeline exercised end-to-end: both collections, all
//! seven Table 1 queries, strict vs vague interpretation, explain plans,
//! and answer sanity (every answer actually contains a query term).

use trex::corpus::{Collection, CorpusConfig, IeeeGenerator, WikiGenerator, PAPER_QUERIES};
use trex::{AliasMap, ListKind, Strategy, TrexConfig, TrexSystem};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-pipeline-{name}-{}.db", std::process::id()))
}

fn build(collection: Collection, docs: usize, name: &str) -> (TrexSystem, std::path::PathBuf) {
    let store = temp(name);
    let mut config = TrexConfig::new(&store);
    config.store_documents = true;
    let system = match collection {
        Collection::Ieee => TrexSystem::build(
            config,
            IeeeGenerator::new(CorpusConfig {
                docs,
                ..CorpusConfig::ieee_default()
            })
            .documents(),
        ),
        Collection::Wiki => {
            config.alias = AliasMap::inex_wiki();
            TrexSystem::build(
                config,
                WikiGenerator::new(CorpusConfig {
                    docs,
                    ..CorpusConfig::wiki_default()
                })
                .documents(),
            )
        }
    }
    .unwrap();
    (system, store)
}

#[test]
fn every_paper_query_returns_ranked_answers_with_term_bearing_snippets() {
    let (ieee, ieee_store) = build(Collection::Ieee, 80, "ieee-pipe");
    let (wiki, wiki_store) = build(Collection::Wiki, 160, "wiki-pipe");
    for q in PAPER_QUERIES {
        let system = match q.collection {
            Collection::Ieee => &ieee,
            Collection::Wiki => &wiki,
        };
        let result = system.search(q.nexi, Some(5)).unwrap();
        assert!(result.total_answers > 0, "query {} found nothing", q.id);
        // Ranked descending.
        for w in result.answers.windows(2) {
            assert!(w[0].score >= w[1].score, "query {} unranked", q.id);
        }
        // Every answer element's snippet contains at least one query term
        // (the paper's answer condition: "contain at least one of the
        // specified keywords").
        let terms: Vec<String> = result
            .translation
            .terms
            .iter()
            .map(|&t| system.index().dictionary().term(t).unwrap().to_string())
            .collect();
        for a in &result.answers {
            let snippet = system.snippet(a).unwrap().unwrap().to_lowercase();
            let (tokens, _) = system.index().analyzer().analyze_from(&snippet, 0);
            let stems: std::collections::HashSet<String> =
                tokens.into_iter().map(|t| t.text).collect();
            assert!(
                terms.iter().any(|t| stems.contains(t)),
                "query {}: answer snippet has no query term; terms {terms:?}",
                q.id
            );
        }
    }
    std::fs::remove_file(&ieee_store).ok();
    std::fs::remove_file(&wiki_store).ok();
}

#[test]
fn explain_predicts_what_auto_runs() {
    let (system, store) = build(Collection::Ieee, 50, "explain");
    let query = "//article//sec[about(., xml query evaluation)]";
    for (k, materialize) in [
        (Some(5), None),
        (Some(5), Some(ListKind::Rpl)),
        (None, Some(ListKind::Erpl)),
    ] {
        if let Some(kind) = materialize {
            system.materialize_for(query, kind).unwrap();
        }
        let plan = system
            .engine()
            .explain(query, trex::EvalOptions::new().k(k))
            .unwrap();
        let result = system.search(query, k).unwrap();
        let ran = match &result.stats {
            trex::StrategyStats::Era(_) => Strategy::Era,
            trex::StrategyStats::Ta(_) => Strategy::Ta,
            trex::StrategyStats::Merge(_) => Strategy::Merge,
            trex::StrategyStats::Race { .. } => Strategy::Race,
            trex::StrategyStats::Scatter { .. } => {
                unreachable!("single-store search never scatters")
            }
        };
        assert_eq!(plan.chosen, ran, "k={k:?} materialize={materialize:?}");
        // The plan's extents are valid XPath descriptions of real sids.
        for (sid, xpath, size) in &plan.extents {
            assert!(xpath.starts_with('/'), "{xpath}");
            assert_eq!(system.index().summary().node(*sid).extent_size, *size);
        }
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn strict_interpretation_is_a_subset_of_vague() {
    let (system, store) = build(Collection::Ieee, 60, "strictsub");
    // Queries written with canonical tags: strict == vague. With synonyms:
    // strict finds fewer (zero) sids.
    for query in [
        "//article//sec[about(., xml query evaluation)]",
        "//article//ss1[about(., xml query evaluation)]",
    ] {
        let vague = system
            .engine()
            .translate(query, trex::Interpretation::Vague)
            .unwrap();
        let strict = system
            .engine()
            .translate(query, trex::Interpretation::Strict)
            .unwrap();
        for sid in &strict.sids {
            assert!(vague.sids.contains(sid), "{query}");
        }
        assert!(strict.sids.len() <= vague.sids.len());
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn all_strategies_agree_on_wiki_with_document_store() {
    let (system, store) = build(Collection::Wiki, 120, "wiki-agree");
    let query = "//article[about(., \"genetic algorithm\")]";
    system.materialize_for(query, ListKind::Both).unwrap();
    let era = system.search_with(query, Some(10), Strategy::Era).unwrap();
    let ta = system.search_with(query, Some(10), Strategy::Ta).unwrap();
    let merge = system
        .search_with(query, Some(10), Strategy::Merge)
        .unwrap();
    let race = system.search_with(query, Some(10), Strategy::Race).unwrap();
    for other in [&ta, &merge, &race] {
        assert_eq!(era.answers.len(), other.answers.len());
        for (a, b) in era.answers.iter().zip(&other.answers) {
            assert_eq!(a.element, b.element);
        }
    }
    std::fs::remove_file(&store).ok();
}
