//! End-to-end integration: generate a corpus, build the system, query it,
//! reopen it from disk, self-manage indexes.

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{ListKind, Strategy, TrexConfig, TrexSystem};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-e2e-{name}-{}.db", std::process::id()))
}

fn small_ieee(docs: usize) -> impl Iterator<Item = String> {
    let gen = IeeeGenerator::new(CorpusConfig {
        docs,
        ..CorpusConfig::ieee_default()
    });
    (0..docs).map(move |i| gen.document(i))
}

#[test]
fn build_query_reopen_cycle() {
    let store = temp("cycle");
    {
        let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(60)).unwrap();
        let result = system
            .search("//article//sec[about(., xml query evaluation)]", Some(10))
            .unwrap();
        assert!(result.total_answers > 0, "topic injection guarantees hits");
        for pair in result.answers.windows(2) {
            assert!(pair[0].score >= pair[1].score, "ranked output");
        }
    }
    // Reopen from disk; same query must give the same answers.
    let system = TrexSystem::open(TrexConfig::new(&store)).unwrap();
    let again = system
        .search("//article//sec[about(., xml query evaluation)]", Some(10))
        .unwrap();
    assert!(!again.answers.is_empty());
    std::fs::remove_file(&store).ok();
}

#[test]
fn translation_reports_sids_and_terms() {
    let store = temp("translate");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(40)).unwrap();
    let t = system
        .engine()
        .translate(
            "//article[about(., ontologies)]//sec[about(., ontologies case study)]",
            Default::default(),
        )
        .unwrap();
    // article alone plus article//sec variants.
    assert!(!t.sids.is_empty());
    assert!(t.sids.len() >= 2, "article + at least one sec path");
    // ontologies, case, study (stemmed, deduplicated).
    assert_eq!(t.terms.len(), 3);
    assert_eq!(t.clauses.len(), 2);
    std::fs::remove_file(&store).ok();
}

#[test]
fn vague_interpretation_finds_alias_synonyms() {
    let store = temp("vague");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(40)).unwrap();
    // ss1 is generated in documents but aliased into sec in the summary;
    // querying for ss1 under the vague interpretation must still work.
    let t = system
        .engine()
        .translate("//article//ss1[about(., xml)]", trex::Interpretation::Vague)
        .unwrap();
    assert!(!t.sids.is_empty());
    let strict = system
        .engine()
        .translate(
            "//article//ss1[about(., xml)]",
            trex::Interpretation::Strict,
        )
        .unwrap();
    assert!(
        strict.sids.is_empty(),
        "no literal ss1 label in the alias summary"
    );
    std::fs::remove_file(&store).ok();
}

#[test]
fn materialized_strategies_run_after_reopen() {
    let store = temp("materialize");
    let query = "//article//sec[about(., information retrieval)]";
    {
        let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(50)).unwrap();
        system.materialize_for(query, ListKind::Both).unwrap();
    }
    let system = TrexSystem::open(TrexConfig::new(&store)).unwrap();
    let ta = system.search_with(query, Some(5), Strategy::Ta).unwrap();
    let merge = system.search_with(query, Some(5), Strategy::Merge).unwrap();
    assert_eq!(ta.answers.len(), merge.answers.len());
    std::fs::remove_file(&store).ok();
}

#[test]
fn missing_indexes_give_a_clear_error() {
    let store = temp("missing");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(20)).unwrap();
    let err = system
        .search_with("//article//sec[about(., xml)]", Some(5), Strategy::Ta)
        .unwrap_err();
    assert!(err.to_string().contains("RPL"), "got: {err}");
    std::fs::remove_file(&store).ok();
}

#[test]
fn auto_strategy_prefers_available_indexes() {
    let store = temp("auto");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(30)).unwrap();
    let query = "//article//sec[about(., xml)]";

    // Nothing materialised: ERA.
    let r = system.search(query, Some(5)).unwrap();
    assert!(matches!(r.stats, trex::StrategyStats::Era(_)));

    // ERPLs materialised: Merge for large k.
    system.materialize_for(query, ListKind::Erpl).unwrap();
    let r = system.search(query, Some(100)).unwrap();
    assert!(matches!(r.stats, trex::StrategyStats::Merge(_)));

    // RPLs too: TA for small k.
    system.materialize_for(query, ListKind::Rpl).unwrap();
    let r = system.search(query, Some(3)).unwrap();
    assert!(matches!(r.stats, trex::StrategyStats::Ta(_)));
    std::fs::remove_file(&store).ok();
}

#[test]
fn unknown_terms_yield_empty_results_not_errors() {
    let store = temp("unknown");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(10)).unwrap();
    let r = system
        .search("//article//sec[about(., zzzzqqqq)]", Some(5))
        .unwrap();
    assert_eq!(r.total_answers, 0);
    assert_eq!(r.translation.unknown_terms, vec!["zzzzqqqq"]);
    std::fs::remove_file(&store).ok();
}

#[test]
fn race_returns_first_finisher_and_agrees_with_era() {
    let store = temp("race");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(60)).unwrap();
    let query = "//article//sec[about(., xml query evaluation)]";

    // Race requires both redundant indexes.
    let err = system
        .search_with(query, Some(5), Strategy::Race)
        .unwrap_err();
    assert!(err.to_string().contains("RPL"), "{err}");

    system.materialize_for(query, ListKind::Both).unwrap();
    let race = system.search_with(query, Some(5), Strategy::Race).unwrap();
    let era = system.search_with(query, Some(5), Strategy::Era).unwrap();
    assert_eq!(race.answers.len(), era.answers.len());
    for (a, b) in race.answers.iter().zip(&era.answers) {
        assert_eq!(a.element, b.element);
        assert!((a.score - b.score).abs() <= 1e-4 * a.score.abs().max(1.0));
    }
    let trex::StrategyStats::Race { won_by, winner, .. } = &race.stats else {
        panic!("expected race stats");
    };
    match won_by {
        trex::RaceWinner::Ta => assert!(matches!(**winner, trex::StrategyStats::Ta(_))),
        trex::RaceWinner::Merge => assert!(matches!(**winner, trex::StrategyStats::Merge(_))),
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn race_is_repeatable_under_load() {
    let store = temp("race-repeat");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(40)).unwrap();
    let query = "//sec[about(., code signing verification)]";
    system.materialize_for(query, ListKind::Both).unwrap();
    let baseline = system
        .search_with(query, Some(10), Strategy::Merge)
        .unwrap();
    for _ in 0..10 {
        let race = system.search_with(query, Some(10), Strategy::Race).unwrap();
        assert_eq!(race.answers.len(), baseline.answers.len());
        for (a, b) in race.answers.iter().zip(&baseline.answers) {
            assert_eq!(a.element, b.element);
        }
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn verbatim_analyzer_survives_reopen() {
    // Regression: the analyzer is persisted in the catalog; a store built
    // with the verbatim pipeline must answer stopword-laden queries after
    // reopening without any analyzer configuration.
    let store = temp("verbatim");
    {
        let mut config = TrexConfig::new(&store);
        config.analyzer = trex::Analyzer::verbatim();
        let docs = vec!["<a><s>the cat and the hat</s></a>".to_string()];
        let system = TrexSystem::build(config, docs).unwrap();
        // "the" is indexed verbatim.
        let r = system.search("//a//s[about(., the)]", Some(5)).unwrap();
        assert_eq!(r.total_answers, 1);
    }
    let system = TrexSystem::open(TrexConfig::new(&store)).unwrap();
    assert_eq!(system.index().analyzer(), trex::Analyzer::verbatim());
    let r = system.search("//a//s[about(., the)]", Some(5)).unwrap();
    assert_eq!(r.total_answers, 1, "analyzer restored from catalog");
    std::fs::remove_file(&store).ok();
}

#[test]
fn snippets_reproduce_answer_elements() {
    let store = temp("snippets");
    let mut config = TrexConfig::new(&store);
    config.store_documents = true;
    let system = TrexSystem::build(config, small_ieee(25)).unwrap();
    let result = system
        .search("//article//sec[about(., xml query evaluation)]", Some(3))
        .unwrap();
    assert!(!result.answers.is_empty());
    for answer in &result.answers {
        let snippet = system.snippet(answer).unwrap().unwrap();
        assert!(
            snippet.starts_with("<sec>")
                || snippet.starts_with("<ss1>")
                || snippet.starts_with("<ss2>"),
            "snippet should be a section element: {}",
            &snippet[..snippet.len().min(60)]
        );
        // The snippet contains at least one of the query terms.
        let lower = snippet.to_lowercase();
        assert!(
            lower.contains("xml") || lower.contains("quer") || lower.contains("evalu"),
            "snippet lacks query terms"
        );
    }
    // Whole documents can be fetched too.
    let doc = system
        .document(result.answers[0].element.doc)
        .unwrap()
        .unwrap();
    assert!(doc.starts_with("<books>"));
    std::fs::remove_file(&store).ok();
}

#[test]
fn snippets_unavailable_without_document_store() {
    let store = temp("nosnippets");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(10)).unwrap();
    let result = system
        .search("//article//sec[about(., xml)]", Some(1))
        .unwrap();
    if let Some(answer) = result.answers.first() {
        assert!(system.snippet(answer).unwrap().is_none());
    }
    assert!(system.document(0).unwrap().is_none());
    std::fs::remove_file(&store).ok();
}

#[test]
fn nested_extent_summaries_are_rejected_for_retrieval() {
    // The IEEE-like generator nests sections (sec inside sec after alias
    // collapsing), so a Tag summary has nested extents and TReX must refuse
    // to run retrieval on it (paper §2.1's nesting-freeness precondition).
    let store = temp("nested");
    let mut config = TrexConfig::new(&store);
    config.summary = trex::SummaryKind::Tag;
    let system = TrexSystem::build(config, small_ieee(20)).unwrap();
    assert!(!system.index().summary().is_nesting_free());
    let err = system
        .search("//article//sec[about(., xml)]", Some(5))
        .unwrap_err();
    assert!(err.to_string().contains("nested extents"), "{err}");
    // Regression: the message once carried a run of source-indentation
    // spaces between "incoming" and "(or larger-k suffix)".
    assert!(
        !err.to_string().contains("  "),
        "user-facing message has doubled spaces: {err:?}"
    );
    std::fs::remove_file(&store).ok();
}

#[test]
fn ksuffix_summary_supports_retrieval_when_nesting_free() {
    // k = 3 distinguishes nested sections in the IEEE-like structure, so the
    // k-suffix summary is nesting-free and retrieval runs.
    let store = temp("ksuffix");
    let mut config = TrexConfig::new(&store);
    config.summary = trex::SummaryKind::KSuffix(3);
    let system = TrexSystem::build(config, small_ieee(30)).unwrap();
    assert!(
        system.index().summary().is_nesting_free(),
        "k=3 should separate nested sections"
    );
    let r = system
        .search("//article//sec[about(., xml query evaluation)]", Some(5))
        .unwrap();
    assert!(r.total_answers > 0);
    std::fs::remove_file(&store).ok();
}
