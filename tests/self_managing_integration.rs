//! Integration tests of the self-managing layer against a real index:
//! profiling, selection under budgets, and store reconciliation.

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{AdvisorOptions, ListKind, SelectionMethod, Strategy, TrexConfig, TrexSystem, Workload};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-sm-{name}-{}.db", std::process::id()))
}

fn build(name: &str, docs: usize) -> (TrexSystem, std::path::PathBuf) {
    let store = temp(name);
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )
    .unwrap();
    (system, store)
}

fn workload() -> Workload {
    Workload::from_weights(vec![
        (
            "//article//sec[about(., xml query evaluation)]".into(),
            3.0,
            10,
        ),
        ("//sec[about(., code signing verification)]".into(), 1.0, 10),
    ])
    .unwrap()
}

#[test]
fn profile_measures_costs_and_list_sizes() {
    let (system, store) = build("profile", 60);
    let costs = system.advisor().profile(&workload(), 1).unwrap();
    assert_eq!(costs.len(), 2);
    for c in &costs {
        assert!(c.frequency > 0.0);
        assert!(c.delta_merge >= 0.0 && c.delta_ta >= 0.0);
        assert!(!c.rpl_lists.is_empty());
        assert!(!c.erpl_lists.is_empty());
        assert!(c.s_rpl() > 0);
        assert!(c.s_erpl() > 0);
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn generous_budget_supports_every_query() {
    let (system, store) = build("generous", 60);
    let report = system
        .advisor()
        .apply(
            &workload(),
            AdvisorOptions {
                budget_bytes: 64 * 1024 * 1024,
                method: SelectionMethod::Greedy,
                measure_runs: 1,
            },
        )
        .unwrap();
    assert!(
        report
            .selection
            .choices
            .iter()
            .all(|c| *c != trex::core::Choice::None),
        "every query should be supported: {:?}",
        report.selection.choices
    );
    // The supported strategies must now actually run.
    for (wq, choice) in workload().queries().iter().zip(&report.selection.choices) {
        let strategy = match choice {
            trex::core::Choice::Erpl => Strategy::Merge,
            trex::core::Choice::Rpl => Strategy::Ta,
            trex::core::Choice::None => continue,
        };
        system.search_with(&wq.nexi, Some(wq.k), strategy).unwrap();
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn zero_budget_drops_everything() {
    let (system, store) = build("zero", 40);
    // Materialise something first so reconciliation has work to do.
    system
        .materialize_for("//article//sec[about(., xml)]", ListKind::Both)
        .unwrap();
    let report = system
        .advisor()
        .apply(
            &workload(),
            AdvisorOptions {
                budget_bytes: 0,
                method: SelectionMethod::Greedy,
                measure_runs: 1,
            },
        )
        .unwrap();
    assert!(report
        .selection
        .choices
        .iter()
        .all(|c| *c == trex::core::Choice::None));
    assert_eq!(report.bytes_used, 0, "reconciliation must drop all lists");
    assert!(report.lists_dropped > 0);
    // TA now fails (no RPLs), ERA still works.
    assert!(system
        .search_with(
            "//article//sec[about(., xml query evaluation)]",
            Some(5),
            Strategy::Ta
        )
        .is_err());
    assert!(system
        .search_with(
            "//article//sec[about(., xml query evaluation)]",
            Some(5),
            Strategy::Era
        )
        .is_ok());
    std::fs::remove_file(&store).ok();
}

#[test]
fn budget_is_respected_by_both_methods() {
    let (system, store) = build("budget", 60);
    let costs = system.advisor().profile(&workload(), 1).unwrap();
    // A budget that fits only the smaller query's lists.
    let smaller = costs
        .iter()
        .map(|c| c.s_erpl().min(c.s_rpl()))
        .min()
        .unwrap();
    let budget = smaller + smaller / 2;
    for method in [SelectionMethod::Greedy, SelectionMethod::Lp] {
        let report = system
            .advisor()
            .apply(
                &workload(),
                AdvisorOptions {
                    budget_bytes: budget,
                    method,
                    measure_runs: 1,
                },
            )
            .unwrap();
        assert!(
            report.bytes_used <= budget,
            "{method:?}: used {} > budget {budget}",
            report.bytes_used
        );
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn lp_never_beats_more_than_twice_greedy() {
    // Theorem 4.2 on a *real* profiled instance (not just synthetic costs).
    let (system, store) = build("thm", 60);
    let costs = system.advisor().profile(&workload(), 1).unwrap();
    let total: u64 = costs.iter().map(|c| c.s_erpl() + c.s_rpl()).sum();
    for budget in [total / 8, total / 4, total / 2, total] {
        let greedy = trex::core::selfmanage::solve_greedy(&costs, budget);
        let lp = trex::core::selfmanage::solve_lp(&costs, budget);
        let g = greedy.saving(&costs);
        let o = lp.saving(&costs);
        assert!(
            o <= 2.0 * g + 1e-12,
            "budget {budget}: lp {o} > 2×greedy {g}"
        );
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn materialisation_batches_checkpoints() {
    // Regression: `materialize` used to flush once per list kind (two WAL
    // checkpoints per call), and the advisor compounded that per workload
    // query. The batch form defers durability to its caller: one checkpoint
    // per advisor pass, not per query.
    use trex::core::{materialize, materialize_batch};

    let (system, store) = build("ckpt", 40);
    let engine = system.engine();
    let translation = engine
        .translate(
            "//article//sec[about(., xml query evaluation)]",
            Default::default(),
        )
        .unwrap();
    let (sids, terms) = (translation.sids, translation.terms);
    let checkpoints = || system.index().store().counters().checkpoints.get();

    let before = checkpoints();
    materialize_batch(system.index(), &sids, &terms, ListKind::Both).unwrap();
    assert_eq!(checkpoints() - before, 0, "batch form must not checkpoint");

    let before = checkpoints();
    materialize(system.index(), &sids, &terms, ListKind::Both).unwrap();
    assert_eq!(
        checkpoints() - before,
        1,
        "direct materialize checkpoints exactly once"
    );

    let before = checkpoints();
    system
        .advisor()
        .apply(
            &workload(),
            AdvisorOptions {
                budget_bytes: 64 * 1024 * 1024,
                method: SelectionMethod::Greedy,
                measure_runs: 1,
            },
        )
        .unwrap();
    assert_eq!(
        checkpoints() - before,
        2,
        "advisor pass: one checkpoint after profiling, one after reconciling"
    );
    std::fs::remove_file(&store).ok();
}

#[test]
fn advisor_handles_random_workloads() {
    use trex::corpus::{random_workload, Collection};

    let (system, store) = build("random-wl", 60);
    let entries = random_workload(Collection::Ieee, 6, 42);
    let workload = Workload::from_weights(entries).unwrap();
    let costs = system.advisor().profile(&workload, 1).unwrap();
    assert_eq!(costs.len(), 6);
    let total: u64 = costs.iter().map(|c| c.s_erpl() + c.s_rpl()).sum();
    for budget in [total / 4, total] {
        let report = system
            .advisor()
            .apply(
                &workload,
                AdvisorOptions {
                    budget_bytes: budget,
                    method: SelectionMethod::Greedy,
                    measure_runs: 1,
                },
            )
            .unwrap();
        assert!(report.bytes_used <= budget);
        // Every supported query must actually run with its chosen strategy.
        for (wq, choice) in workload.queries().iter().zip(&report.selection.choices) {
            let strategy = match choice {
                trex::core::Choice::Erpl => Strategy::Merge,
                trex::core::Choice::Rpl => Strategy::Ta,
                trex::core::Choice::None => continue,
            };
            system.search_with(&wq.nexi, Some(wq.k), strategy).unwrap();
        }
    }
    std::fs::remove_file(&store).ok();
}
