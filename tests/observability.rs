//! Integration tests of the query-trace observability layer: traces are
//! attached on demand and reflect real work, the measured access counts
//! validate against the §4 cost-model predictions, and the counters stay
//! exact under concurrent querying.

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::{
    EvalOptions, ListKind, Strategy, StrategyMetrics, ToJson, TrexConfig, TrexSystem,
    TA_PREDICTION_FACTOR,
};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-obs-{name}-{}.db", std::process::id()))
}

fn small_ieee(docs: usize) -> impl Iterator<Item = String> {
    let gen = IeeeGenerator::new(CorpusConfig {
        docs,
        ..CorpusConfig::ieee_default()
    });
    (0..docs).map(move |i| gen.document(i))
}

const QUERY: &str = "//article//sec[about(., xml query evaluation)]";

#[test]
fn trace_is_attached_only_on_request() {
    let store = temp("toggle");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(50)).unwrap();

    let plain = system.search(QUERY, Some(10)).unwrap();
    assert!(plain.trace.is_none(), "no trace unless requested");

    let traced = system.search_traced(QUERY, Some(10)).unwrap();
    let trace = traced.trace.expect("trace requested");
    assert_eq!(trace.strategy, "era", "no redundant lists yet");
    assert!(trace.storage.cursor_steps > 0, "ERA walks B+tree cursors");
    assert!(trace.storage.btree_node_visits > 0);
    assert!(trace.index.posting_entries > 0, "ERA decodes postings");
    assert_eq!(trace.index.rpl_entries, 0, "no RPLs were read");
    assert!(trace.cost.sorted_accesses > 0);
    assert_eq!(plain.answers.len(), traced.answers.len());

    // The trace renders as one JSON object with every section present.
    let json = trace.to_json();
    for section in ["\"stages\":", "\"storage\":", "\"index\":", "\"cost\":"] {
        assert!(json.contains(section), "{json}");
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn strategies_report_their_own_cost_units() {
    let store = temp("units");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(50)).unwrap();
    system.materialize_for(QUERY, ListKind::Both).unwrap();
    let engine = system.engine();

    let ta = engine
        .evaluate(
            QUERY,
            EvalOptions::new().k(5).strategy(Strategy::Ta).trace(true),
        )
        .unwrap();
    let ta_trace = ta.trace.unwrap();
    assert_eq!(ta_trace.strategy, "ta");
    assert!(ta_trace.index.rpl_entries > 0, "TA reads RPLs");
    assert_eq!(
        ta_trace.cost.sorted_accesses, ta_trace.index.rpl_entries,
        "TA sorted accesses are exactly the RPL entries decoded"
    );
    assert_eq!(
        ta_trace.cost.random_accesses, 0,
        "TA never does random access"
    );
    assert!(ta_trace.cost.heap_pushes > 0);

    let merge = engine
        .evaluate(
            QUERY,
            EvalOptions::new()
                .k(5)
                .strategy(Strategy::Merge)
                .trace(true),
        )
        .unwrap();
    let merge_trace = merge.trace.unwrap();
    assert_eq!(merge_trace.strategy, "merge");
    assert_eq!(
        merge_trace.cost.sorted_accesses, merge_trace.index.erpl_entries,
        "Merge sorted accesses are exactly the ERPL entries decoded"
    );

    // The StrategyMetrics trait exposes the same numbers uniformly.
    assert_eq!(ta.stats.accesses().0, ta_trace.cost.sorted_accesses);
    assert_eq!(
        merge.stats.accesses(),
        (merge_trace.cost.sorted_accesses, 0)
    );
    assert!(StrategyMetrics::wall(&ta.stats) > std::time::Duration::ZERO);
    std::fs::remove_file(&store).ok();
}

#[test]
fn measured_accesses_validate_against_cost_model() {
    let store = temp("costmodel");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(80)).unwrap();
    system.materialize_for(QUERY, ListKind::Both).unwrap();

    let validations = system.engine().validate_costs(QUERY, 5).unwrap();
    assert_eq!(
        validations.len(),
        4,
        "TA and Merge were covered, each with an entry- and a block-level record"
    );
    for v in &validations {
        let ratio = v.ratio();
        assert!(
            ratio.is_finite(),
            "{}: ratio {ratio} not finite",
            v.strategy
        );
        match v.strategy.as_str() {
            // Merge's predictions are exact: every ERPL entry is read once,
            // and therefore every block of every covered list is fetched once.
            "merge" | "merge-blocks" => assert_eq!(
                v.measured, v.predicted as u64,
                "{} measured {} != predicted {}",
                v.strategy, v.measured, v.predicted
            ),
            // TA's Fagin-style depth estimate holds within the documented
            // factor (see `TA_PREDICTION_FACTOR` for why it is loose); the
            // block estimate derives from the same depth so inherits it.
            "ta" | "ta-blocks" => assert!(
                v.within_factor(TA_PREDICTION_FACTOR),
                "{} measured {} vs predicted {} (ratio {ratio}) outside factor {TA_PREDICTION_FACTOR}",
                v.strategy,
                v.measured,
                v.predicted
            ),
            other => panic!("unexpected strategy {other}"),
        }
        // Every validation record renders as JSON for the bench export.
        assert!(v
            .to_json()
            .contains(&format!("\"strategy\":\"{}\"", v.strategy)));
    }
    std::fs::remove_file(&store).ok();
}

/// N threads hammer one shared `TrexSystem`; every thread must get the
/// serial answers, and the *index-layer* counter totals must equal N times
/// the serial delta (decode work is deterministic per query; storage-layer
/// hit/miss splits can legitimately vary with cache interleaving, so only
/// their sums-of-work invariants are checked loosely).
#[test]
fn concurrent_queries_match_serial_run_and_counters_add_up() {
    let store = temp("concurrent");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(60)).unwrap();
    system.materialize_for(QUERY, ListKind::Both).unwrap();

    // Serial baseline: answers + per-query index-counter delta.
    let serial = system.search_traced(QUERY, Some(10)).unwrap();
    let serial_trace = serial.trace.clone().unwrap();
    assert!(serial_trace.entries_decoded() > 0);

    const THREADS: usize = 4;
    let before = system.index().counters().snapshot();
    let storage_before = system.index().store().counters().snapshot();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                let result = system.search_traced(QUERY, Some(10)).unwrap();
                assert_eq!(result.answers.len(), serial.answers.len());
                for (a, b) in result.answers.iter().zip(&serial.answers) {
                    assert_eq!(a.element, b.element);
                    assert_eq!(a.score, b.score);
                }
            });
        }
    });
    let delta = system.index().counters().snapshot().delta(&before);
    let storage_delta = system
        .index()
        .store()
        .counters()
        .snapshot()
        .delta(&storage_before);

    for (name, total, per_query) in [
        (
            "posting_entries",
            delta.posting_entries,
            serial_trace.index.posting_entries,
        ),
        (
            "rpl_entries",
            delta.rpl_entries,
            serial_trace.index.rpl_entries,
        ),
        (
            "erpl_entries",
            delta.erpl_entries,
            serial_trace.index.erpl_entries,
        ),
        ("rpl_bytes", delta.rpl_bytes, serial_trace.index.rpl_bytes),
    ] {
        assert_eq!(
            total,
            per_query * THREADS as u64,
            "{name}: concurrent total must be {THREADS}x the serial delta"
        );
    }
    // Storage work happened and no lookup was lost: hits + misses together
    // cover every fetch the four runs performed.
    assert!(storage_delta.pool_hits + storage_delta.pool_misses > 0);
    assert_eq!(
        storage_delta.cursor_steps,
        serial_trace.storage.cursor_steps * THREADS as u64,
        "cursor steps are deterministic per query"
    );
    std::fs::remove_file(&store).ok();
}

#[test]
fn telemetry_histograms_spans_and_slow_log_populate_end_to_end() {
    let store = temp("telemetry");
    let system = TrexSystem::build(TrexConfig::new(&store), small_ieee(50)).unwrap();
    let telemetry = system.index().telemetry().clone();
    telemetry
        .slow
        .set_threshold(Some(std::time::Duration::ZERO));

    for _ in 0..3 {
        system.search(QUERY, Some(10)).unwrap();
    }

    // Every stage of the query path landed in its histogram.
    let query = telemetry.query.query.snapshot();
    assert_eq!(query.count(), 3);
    assert_eq!(telemetry.query.translate.snapshot().count(), 3);
    assert_eq!(telemetry.query.rank.snapshot().count(), 3);
    assert_eq!(telemetry.query.era_eval.snapshot().count(), 3);
    assert!(query.percentile(0.50) <= query.percentile(0.99));
    assert!(query.percentile(0.99) <= query.max_ns());
    assert!(query.sum_ns() > 0);

    // The storage layer timed its page reads, and the maintenance gate its
    // (uncontended) read acquisitions — one per query.
    assert!(system.index().store().timers().page_read.snapshot().count() > 0);
    assert!(telemetry.maint.read_gate_wait.snapshot().count() >= 3);

    // The journal's event stream nests (everything above ran on this one
    // thread), and the slow log captured all three queries with their span
    // subtrees.
    trex::obs::check_nesting(&telemetry.journal.snapshot()).unwrap();
    let entries = telemetry.slow.entries();
    assert_eq!(entries.len(), 3);
    for entry in &entries {
        assert_eq!(entry.query, QUERY);
        assert_eq!(entry.strategy, "era");
        assert_eq!(entry.trace.strategy, "era");
        assert!(!entry.spans.is_empty());
        trex::obs::check_nesting(&entry.spans).unwrap();
    }

    // Paused telemetry records nothing — histograms, spans and slow log all
    // hold still while queries keep answering.
    let registry = system.metrics();
    registry.set_telemetry_enabled(false);
    system.search(QUERY, Some(10)).unwrap();
    assert_eq!(telemetry.query.query.snapshot().count(), 3);
    assert_eq!(telemetry.slow.len(), 3);
    registry.set_telemetry_enabled(true);
    system.search(QUERY, Some(10)).unwrap();
    assert_eq!(telemetry.query.query.snapshot().count(), 4);

    std::fs::remove_file(&store).ok();
}
