//! Partitioned scatter-gather determinism: a partitioned system must be
//! indistinguishable from a single store, byte for byte, at any partition
//! count — for the paper's seven queries, for crafted score-tie-at-the-k-
//! boundary workloads, and while ingest and reconcile run concurrently.
//!
//! The identity argument (see `trex::core::partition` docs): a partitioned
//! build shares one summary / dictionary / statistics catalog, keeps global
//! document ids, and routes whole documents, so per-partition scores equal
//! single-store scores and the rank-safe k-way merge reproduces the global
//! ordering exactly.

use trex::corpus::{Collection, CorpusConfig, IeeeGenerator, WikiGenerator, PAPER_QUERIES};
use trex::{
    AliasMap, Answer, PartitionedTrexSystem, SelfManageOptions, Strategy, TrexConfig, TrexSystem,
};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-part-{name}-{}.db", std::process::id()))
}

fn cleanup(base: &std::path::Path) {
    std::fs::remove_file(base).ok();
    std::fs::remove_file(trex::storage::wal_path(base)).ok();
    for i in 0..8 {
        let p = trex::partition_store_path(base, i);
        std::fs::remove_file(trex::storage::wal_path(&p)).ok();
        std::fs::remove_file(&p).ok();
    }
}

fn ieee_docs(docs: usize) -> Vec<String> {
    IeeeGenerator::new(CorpusConfig {
        docs,
        ..CorpusConfig::ieee_default()
    })
    .documents()
    .collect()
}

fn wiki_docs(docs: usize) -> Vec<String> {
    WikiGenerator::new(CorpusConfig {
        docs,
        ..CorpusConfig::wiki_default()
    })
    .documents()
    .collect()
}

/// Asserts two answer lists are byte-identical: same length, and every
/// field of every answer equal (including exact f32 score equality —
/// that is the contract, not an approximation).
fn assert_identical(context: &str, baseline: &[Answer], partitioned: &[Answer]) {
    assert_eq!(
        baseline.len(),
        partitioned.len(),
        "{context}: answer counts diverge"
    );
    for (rank, (b, p)) in baseline.iter().zip(partitioned).enumerate() {
        assert_eq!(b, p, "{context}: rank {rank} diverges");
    }
}

/// The paper's seven queries, each against its own collection, at
/// partition counts 1, 2 and 4: answers must be byte-identical to the
/// single-store build, for several k values including `None` (everything).
#[test]
fn paper_queries_are_byte_identical_across_partition_counts() {
    for (collection, docs, alias) in [
        (Collection::Ieee, ieee_docs(72), AliasMap::inex_ieee()),
        (Collection::Wiki, wiki_docs(72), AliasMap::inex_wiki()),
    ] {
        let base = temp(&format!("paper-{collection:?}"));
        cleanup(&base);
        let mut config = TrexConfig::new(&base);
        config.alias = alias;
        let single = TrexSystem::build(config.clone(), docs.iter().cloned()).unwrap();

        for partitions in [1usize, 2, 4] {
            let pbase = temp(&format!("paper-{collection:?}-n{partitions}"));
            cleanup(&pbase);
            let mut pconfig = config.clone();
            pconfig.store_path = pbase.clone();
            let system =
                PartitionedTrexSystem::build(pconfig, partitions, docs.iter().cloned()).unwrap();
            assert_eq!(system.partitions(), partitions);

            for query in PAPER_QUERIES.iter().filter(|q| q.collection == collection) {
                for k in [Some(1), Some(5), Some(20), None] {
                    let want = single.search(query.nexi, k).unwrap();
                    let got = system.search(query.nexi, k).unwrap();
                    let context = format!(
                        "{collection:?} topic {} k={k:?} partitions={partitions}",
                        query.id
                    );
                    assert_identical(&context, &want.answers, &got.answers);
                    assert_eq!(
                        want.total_answers, got.total_answers,
                        "{context}: total_answers"
                    );
                }
            }
            cleanup(&pbase);
        }
        cleanup(&base);
    }
}

/// A corpus crafted so scores tie exactly at the k boundary: many
/// documents carry an identical `<sec>` (same tokens, same length → same
/// BM25 score), plus a few strictly-better and strictly-worse documents.
/// Cutting k inside the tie group must keep the single-store tiebreak
/// (score desc, then global doc order) at every partition count — this is
/// exactly where a sloppy merge (per-partition doc order, unstable heap)
/// would diverge.
#[test]
fn score_ties_at_the_k_boundary_merge_deterministically() {
    let mut docs = Vec::new();
    for i in 0..36 {
        // Three strata: strictly better (quantum twice), the 30-way tie
        // stratum (identical sec), strictly worse (diluted by filler).
        let body = match i % 12 {
            0 => "<sec>quantum quantum search</sec>".to_string(),
            11 => "<sec>quantum filler filler filler filler filler filler</sec>".to_string(),
            _ => "<sec>quantum search basics</sec>".to_string(),
        };
        docs.push(format!("<article>{body}</article>"));
    }
    let base = temp("ties");
    cleanup(&base);
    let single = TrexSystem::build(TrexConfig::new(&base), docs.iter().cloned()).unwrap();

    for partitions in [1usize, 2, 4] {
        let pbase = temp(&format!("ties-n{partitions}"));
        cleanup(&pbase);
        let system =
            PartitionedTrexSystem::build(TrexConfig::new(&pbase), partitions, docs.iter().cloned())
                .unwrap();
        // k values that cut before, inside (several depths) and after the
        // tie stratum.
        for k in [1, 2, 4, 9, 17, 30, 33, 36] {
            for strategy in [Strategy::Auto, Strategy::Era] {
                let want = single
                    .search_with("//article//sec[about(., quantum)]", Some(k), strategy)
                    .unwrap();
                let got = system
                    .search_with("//article//sec[about(., quantum)]", Some(k), strategy)
                    .unwrap();
                let context = format!("ties k={k} strategy={strategy:?} partitions={partitions}");
                assert_identical(&context, &want.answers, &got.answers);
            }
        }
        // Sanity: the tie stratum really ties — equal scores with distinct
        // docs, ordered by global doc id.
        let all = system
            .search("//article//sec[about(., quantum)]", None)
            .unwrap();
        let tied: Vec<&Answer> = all
            .answers
            .iter()
            .filter(|a| (a.score - all.answers[5].score).abs() < f32::EPSILON)
            .collect();
        assert!(tied.len() >= 10, "crafted tie stratum exists");
        for pair in tied.windows(2) {
            assert!(
                pair[0].element.doc < pair[1].element.doc,
                "ties break by global doc order"
            );
        }
        cleanup(&pbase);
    }
    cleanup(&base);
}

/// Byte identity survives live operation: the same documents ingested in
/// the same order into a single store and a 4-partition system — with
/// queries hammering the partitioned system *while* it ingests and its
/// heat-splitting reconciler runs — must agree once ingest quiesces, both
/// before and after folding the deltas to disk.
#[test]
fn concurrent_ingest_and_reconcile_preserve_identity() {
    let built = ieee_docs(48);
    let live = ieee_docs(64).split_off(48); // 16 fresh documents to ingest
    let queries: Vec<&str> = PAPER_QUERIES
        .iter()
        .filter(|q| q.collection == Collection::Ieee)
        .map(|q| q.nexi)
        .collect();

    let base = temp("live-single");
    cleanup(&base);
    let single = TrexSystem::build(TrexConfig::new(&base), built.iter().cloned()).unwrap();

    let pbase = temp("live-part");
    cleanup(&pbase);
    let system =
        PartitionedTrexSystem::build(TrexConfig::new(&pbase), 4, built.iter().cloned()).unwrap();

    // Reconcile keeps running throughout: a 10ms interval guarantees
    // several budget re-splits while we ingest and query.
    let manager = system
        .start_self_manager(
            SelfManageOptions::new(256 * 1024).interval(std::time::Duration::from_millis(10)),
        )
        .unwrap();

    std::thread::scope(|scope| {
        let system = &system;
        let queries = &queries;
        let live = &live;
        let ingester = scope.spawn(move || {
            for xml in live.iter() {
                system.ingest_document(xml).unwrap();
            }
        });
        // Two query threads racing the ingest: results are transient (the
        // delta grows underneath them) so only absence of errors is
        // asserted here; identity is checked after quiescing.
        let mut hammers = Vec::new();
        for _ in 0..2 {
            hammers.push(scope.spawn(move || {
                for round in 0..6 {
                    for nexi in queries.iter() {
                        system.search(nexi, Some(5 + round)).unwrap();
                    }
                }
            }));
        }
        ingester.join().unwrap();
        for h in hammers {
            h.join().unwrap();
        }
    });

    for xml in &live {
        single.ingest_document(xml).unwrap();
    }

    // Quiesced: same corpus on both sides (partitioned still reconciling
    // in the background — reconcile is rank-safe, so it must not matter).
    for nexi in &queries {
        let want = single.search(nexi, Some(20)).unwrap();
        let got = system.search(nexi, Some(20)).unwrap();
        assert_identical(&format!("live {nexi}"), &want.answers, &got.answers);
    }
    manager.stop();

    // And after folding the deltas into the on-disk tables.
    single.fold_once().unwrap();
    let folded: usize = system.fold_once().unwrap().iter().flatten().count();
    assert!(folded > 0, "routed ingest left deltas to fold somewhere");
    for nexi in &queries {
        let want = single.search(nexi, Some(20)).unwrap();
        let got = system.search(nexi, Some(20)).unwrap();
        assert_identical(&format!("folded {nexi}"), &want.answers, &got.answers);
    }

    cleanup(&base);
    cleanup(&pbase);
}

/// Reopening a partitioned family from disk (auto-detecting the partition
/// count) preserves the answers of the build-time system.
#[test]
fn reopen_detects_partitions_and_preserves_answers() {
    let docs = ieee_docs(40);
    let base = temp("reopen");
    cleanup(&base);
    let want: Vec<Answer> = {
        let system =
            PartitionedTrexSystem::build(TrexConfig::new(&base), 3, docs.iter().cloned()).unwrap();
        system
            .search("//article//sec[about(., xml query evaluation)]", Some(10))
            .unwrap()
            .answers
    };
    assert_eq!(
        PartitionedTrexSystem::detect_partitions(&base),
        3,
        "three sibling stores on disk"
    );
    let system = PartitionedTrexSystem::open(TrexConfig::new(&base)).unwrap();
    assert_eq!(system.partitions(), 3);
    let got = system
        .search("//article//sec[about(., xml query evaluation)]", Some(10))
        .unwrap();
    assert_identical("reopen", &want, &got.answers);
    cleanup(&base);
}
