//! End-to-end tests of the explainability surface: W3C `traceparent`
//! round-trips over HTTP (inbound ids honored, malformed ids replaced,
//! every response echoes one), `/v1/trace/<id>` span trees (single-store
//! and partitioned scatter — one child span per partition, answers still
//! byte-identical), `/healthz` vs `/readyz`, the advisor decision journal
//! at `/v1/advisor/history`, and cost-model drift convergence on a steady
//! workload.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use trex::obs::{parse_json, DriftKind, JsonValue};
use trex::{
    EvalOptions, HttpServerConfig, ListKind, PartitionedTrexSystem, SelfManageOptions, Strategy,
    TrexConfig, TrexSystem, TA_PREDICTION_FACTOR,
};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-tracing-{name}-{}.db", std::process::id()))
}

fn cleanup(path: &std::path::Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trex::storage::wal_path(path)).ok();
    std::fs::remove_file(trex::advisor_sidecar_path(path)).ok();
    for i in 0..8 {
        let part = trex::partition_store_path(path, i);
        std::fs::remove_file(trex::storage::wal_path(&part)).ok();
        std::fs::remove_file(part).ok();
    }
}

fn docs() -> Vec<String> {
    (0..40)
        .map(|i| {
            let topic = ["xml", "retrieval", "index", "summary", "keyword"][i % 5];
            format!(
                "<article><sec>{topic} evaluation w{i}</sec><sec>cat dog {topic}</sec></article>"
            )
        })
        .collect()
}

/// One HTTP/1.1 request with optional extra headers; returns
/// (status line, full header block, body).
fn http_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response: {response}"));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, head.to_string(), body.to_string())
}

/// The `traceparent` header value in a response head, if present.
fn response_traceparent(head: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("traceparent")
            .then(|| value.trim().to_string())
    })
}

/// `(doc, start, end, sid, score-bits)` — exact comparison, scores included.
type AnswerTuple = (u64, u64, u64, u64, u32);

fn answer_tuples(response: &JsonValue) -> Vec<AnswerTuple> {
    let JsonValue::Array(answers) = response.get("answers").expect("answers field") else {
        panic!("answers is not an array");
    };
    answers
        .iter()
        .map(|a| {
            (
                a.get("doc").unwrap().as_u64().unwrap(),
                a.get("start").unwrap().as_u64().unwrap(),
                a.get("end").unwrap().as_u64().unwrap(),
                a.get("sid").unwrap().as_u64().unwrap(),
                (a.get("score").unwrap().as_f64().unwrap() as f32).to_bits(),
            )
        })
        .collect()
}

#[test]
fn traceparent_round_trip_and_trace_route() {
    let path = temp("roundtrip");
    let system = TrexSystem::build(TrexConfig::new(&path), docs()).expect("build");
    let server = system
        .serve_http("127.0.0.1:0", HttpServerConfig::default())
        .expect("start http server");
    let addr = server.addr();
    let body = r#"{"nexi": "//article//sec[about(., xml)]", "k": 5}"#;

    // Inbound traceparent: honored (the response echoes the same trace id)
    // and the assembled span tree is served at /v1/trace/<id>.
    let trace_id = "0af7651916cd43dd8448eb211c80319c";
    let inbound = format!("00-{trace_id}-b7ad6b7169203331-01");
    let (status, head, _) = http_request(
        addr,
        "POST",
        "/v1/query",
        &[("traceparent", &inbound)],
        Some(body),
    );
    assert!(status.contains("200"), "{status}");
    let echoed = response_traceparent(&head).expect("response echoes traceparent");
    assert!(
        echoed.contains(trace_id),
        "echo {echoed} lost the inbound trace id"
    );

    let (status, _, trace_body) =
        http_request(addr, "GET", &format!("/v1/trace/{trace_id}"), &[], None);
    assert!(status.contains("200"), "{status}: {trace_body}");
    let record = parse_json(&trace_body).expect("trace record is JSON");
    assert_eq!(
        record.get("trace_id").unwrap().as_str(),
        Some(trace_id),
        "{trace_body}"
    );
    let root = record.get("root").expect("root span");
    assert_eq!(root.get("name").unwrap().as_str(), Some("query"));
    assert!(root.get("duration_us").unwrap().as_u64().is_some());
    assert!(record.get("truncated").unwrap().as_bool().is_some());

    // A malformed traceparent is replaced with a freshly minted valid one.
    let (status, head, _) = http_request(
        addr,
        "POST",
        "/v1/query",
        &[("traceparent", "junk-not-a-traceparent")],
        Some(body),
    );
    assert!(status.contains("200"), "{status}");
    let minted = response_traceparent(&head).expect("fresh traceparent minted");
    assert!(!minted.contains(trace_id));
    let parts: Vec<&str> = minted.split('-').collect();
    assert_eq!(parts.len(), 4, "w3c shape: {minted}");
    assert_eq!(parts[0], "00");
    assert_eq!(parts[1].len(), 32);
    assert_eq!(parts[2].len(), 16);
    assert_ne!(parts[1], "00000000000000000000000000000000");

    // A header-less request still gets a correlation id echoed back, but
    // no capture: the result cache stays usable for the common path.
    let (status, head, _) = http_request(addr, "POST", "/v1/query", &[], Some(body));
    assert!(status.contains("200"), "{status}");
    let correlation = response_traceparent(&head).expect("correlation id minted");
    let correlation_id = correlation.split('-').nth(1).unwrap();
    let (status, _, _) = http_request(
        addr,
        "GET",
        &format!("/v1/trace/{correlation_id}"),
        &[],
        None,
    );
    assert!(
        status.contains("404"),
        "header-less requests are not captured: {status}"
    );

    // Unknown-but-valid id → 404; malformed id → 400.
    let (status, _, _) = http_request(
        addr,
        "GET",
        "/v1/trace/ffffffffffffffffffffffffffffffff",
        &[],
        None,
    );
    assert!(status.contains("404"), "{status}");
    let (status, _, _) = http_request(addr, "GET", "/v1/trace/zzz", &[], None);
    assert!(status.contains("400"), "{status}");

    // Slow-query log entries carry the trace id of traced requests.
    system
        .index()
        .telemetry()
        .slow
        .set_threshold(Some(Duration::ZERO));
    let unique = r#"{"nexi": "//article//sec[about(., keyword)]", "k": 5}"#;
    let (status, _, _) = http_request(
        addr,
        "POST",
        "/v1/query",
        &[("traceparent", &inbound)],
        Some(unique),
    );
    assert!(status.contains("200"), "{status}");
    let (_, _, slow) = http_request(addr, "GET", "/v1/slow", &[], None);
    assert!(
        slow.contains(trace_id),
        "slow log names the trace id: {slow}"
    );

    server.stop();
    cleanup(&path);
}

#[test]
fn healthz_is_liveness_readyz_is_readiness() {
    let path = temp("ready");
    let system = TrexSystem::build(TrexConfig::new(&path), docs()).expect("build");
    let server = system
        .serve_http("127.0.0.1:0", HttpServerConfig::default())
        .expect("start http server");
    let addr = server.addr();

    let (status, _, body) = http_request(addr, "GET", "/v1/healthz", &[], None);
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    let (status, _, body) = http_request(addr, "GET", "/readyz", &[], None);
    assert!(status.contains("200"), "{status}: {body}");
    let health = parse_json(&body).expect("readyz body is JSON");
    assert_eq!(health.get("ready").unwrap().as_bool(), Some(true));
    assert!(health.get("generation").unwrap().as_u64().is_some());
    assert_eq!(
        health.get("reconcile_in_flight").unwrap().as_bool(),
        Some(false)
    );
    assert_eq!(health.get("fold_in_flight").unwrap().as_bool(), Some(false));

    // Flip readiness off: liveness stays 200, readiness goes 503.
    system.health().set_ready(false);
    let (status, _, _) = http_request(addr, "GET", "/v1/healthz", &[], None);
    assert!(status.contains("200"), "{status}");
    let (status, _, body) = http_request(addr, "GET", "/v1/readyz", &[], None);
    assert!(status.contains("503"), "{status}");
    let health = parse_json(&body).expect("unready body is still JSON");
    assert_eq!(health.get("ready").unwrap().as_bool(), Some(false));

    server.stop();
    cleanup(&path);
}

#[test]
fn partitioned_trace_tree_spans_every_partition() {
    let single_path = temp("scatter-single");
    let part_path = temp("scatter-parts");
    let single = TrexSystem::build(TrexConfig::new(&single_path), docs()).expect("build single");
    let parts =
        PartitionedTrexSystem::build(TrexConfig::new(&part_path), 3, docs()).expect("build parts");
    assert_eq!(parts.partitions(), 3);

    let single_server = single
        .serve_http("127.0.0.1:0", HttpServerConfig::default())
        .expect("single http");
    let part_server = parts
        .serve_http("127.0.0.1:0", HttpServerConfig::default())
        .expect("partitioned http");

    let body = r#"{"nexi": "//article//sec[about(., retrieval evaluation)]", "k": 10}"#;
    let trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
    let inbound = format!("00-{trace_id}-00f067aa0ba902b7-01");

    let (status, _, single_body) =
        http_request(single_server.addr(), "POST", "/v1/query", &[], Some(body));
    assert!(status.contains("200"), "{status}");
    let (status, head, part_body) = http_request(
        part_server.addr(),
        "POST",
        "/v1/query",
        &[("traceparent", &inbound)],
        Some(body),
    );
    assert!(status.contains("200"), "{status}");
    assert!(response_traceparent(&head)
        .expect("partitioned echo")
        .contains(trace_id));

    // Byte-identical answers: same tuples, same score bits, traced or not.
    let single_json = parse_json(&single_body).unwrap();
    let part_json = parse_json(&part_body).unwrap();
    assert_eq!(answer_tuples(&part_json), answer_tuples(&single_json));
    assert!(!answer_tuples(&part_json).is_empty(), "query matched docs");

    // The assembled tree is one scatter root with exactly one child span
    // per partition, each wrapping that partition's own query tree.
    let (status, _, trace_body) = http_request(
        part_server.addr(),
        "GET",
        &format!("/v1/trace/{trace_id}"),
        &[],
        None,
    );
    assert!(status.contains("200"), "{status}: {trace_body}");
    let record = parse_json(&trace_body).expect("trace record");
    let root = record.get("root").expect("root");
    assert_eq!(root.get("name").unwrap().as_str(), Some("scatter"));
    let JsonValue::Array(children) = root.get("children").expect("children") else {
        panic!("children is not an array");
    };
    let mut names: Vec<String> = children
        .iter()
        .map(|c| c.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    names.sort();
    assert_eq!(names, vec!["partition:0", "partition:1", "partition:2"]);
    for child in children {
        let JsonValue::Array(grand) = child.get("children").expect("partition children") else {
            panic!("partition children is not an array");
        };
        assert_eq!(grand.len(), 1, "one query tree per partition");
        assert_eq!(grand[0].get("name").unwrap().as_str(), Some("query"));
    }

    single_server.stop();
    part_server.stop();
    cleanup(&single_path);
    cleanup(&part_path);
}

#[test]
fn advisor_journal_records_cycles_and_serves_history() {
    let path = temp("advisor");
    let system = TrexSystem::build(TrexConfig::new(&path), docs()).expect("build");

    // Give the profiler a workload worth reconciling for.
    let engine = system.engine();
    for _ in 0..4 {
        engine
            .evaluate(
                "//article//sec[about(., xml)]",
                EvalOptions::new().k(Some(5)),
            )
            .expect("seed profiler");
    }

    let manager = system
        .start_self_manager(
            SelfManageOptions::new(64 * 1024 * 1024).interval(Duration::from_millis(10)),
        )
        .expect("start self-manager");
    let deadline = Instant::now() + Duration::from_secs(20);
    while system.advisor_journal().len() < 2 {
        assert!(
            Instant::now() < deadline,
            "self-manager never journalled a cycle"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    manager.stop();

    let server = system
        .serve_http("127.0.0.1:0", HttpServerConfig::default())
        .expect("start http server");
    let (status, _, body) = http_request(server.addr(), "GET", "/v1/advisor/history", &[], None);
    assert!(status.contains("200"), "{status}");
    let history = parse_json(&body).expect("history is JSON");
    assert_eq!(history.get("v").unwrap().as_u64(), Some(1));
    let JsonValue::Array(cycles) = history.get("cycles").expect("cycles") else {
        panic!("cycles is not an array");
    };
    assert!(cycles.len() >= 2, "{body}");
    let first = &cycles[0];
    assert_eq!(
        first.get("budget_bytes").unwrap().as_u64(),
        Some(64 * 1024 * 1024)
    );
    for key in [
        "cycle",
        "unix_ms",
        "generation",
        "bytes_used",
        "lists_materialized",
        "lists_dropped",
        "gate_pause_us",
        "wall_us",
    ] {
        assert!(first.get(key).unwrap().as_u64().is_some(), "missing {key}");
    }
    let JsonValue::Array(shapes) = first.get("shapes").expect("shapes") else {
        panic!("shapes is not an array");
    };
    assert!(
        !shapes.is_empty(),
        "profiled workload appears in the record"
    );
    let shape = &shapes[0];
    assert!(shape.get("nexi").unwrap().as_str().is_some());
    assert!(shape.get("choice").unwrap().as_str().is_some());
    assert!(shape.get("measured_era_us").unwrap().as_f64().is_some());

    // The first cycle materialises lists, so its deltas name them.
    let materialised: u64 = cycles
        .iter()
        .map(|c| c.get("lists_materialized").unwrap().as_u64().unwrap())
        .sum();
    assert!(materialised > 0, "no cycle materialised anything: {body}");

    let (status, _, last) = http_request(server.addr(), "GET", "/v1/advisor/last", &[], None);
    assert!(status.contains("200"), "{status}");
    parse_json(&last).expect("last is JSON");

    // The on-disk sidecar mirrors the ring: one parseable JSON line each.
    let sidecar = std::fs::read_to_string(trex::advisor_sidecar_path(&path)).expect("sidecar");
    let lines: Vec<&str> = sidecar.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 2, "sidecar has {} lines", lines.len());
    for line in &lines {
        parse_json(line).expect("sidecar line is JSON");
    }

    server.stop();
    cleanup(&path);
}

#[test]
fn drift_monitor_converges_on_a_steady_workload() {
    let path = temp("drift");
    let system = TrexSystem::build(TrexConfig::new(&path), docs()).expect("build");
    let nexi = "//article//sec[about(., xml retrieval)]";
    system
        .materialize_for(nexi, ListKind::Both)
        .expect("materialise redundant lists");

    let drift = &system.index().telemetry().drift;
    let engine = system.engine();
    for _ in 0..12 {
        engine
            .evaluate(
                nexi,
                EvalOptions::new()
                    .k(Some(5))
                    .trace(true)
                    .strategy(Strategy::Merge),
            )
            .expect("merge query");
        engine
            .evaluate(
                nexi,
                EvalOptions::new()
                    .k(Some(5))
                    .trace(true)
                    .strategy(Strategy::Ta),
            )
            .expect("ta query");
    }

    assert!(drift.samples(DriftKind::MergeEntries) >= 12);
    assert!(drift.samples(DriftKind::TaEntries) >= 12);
    // Merge's §4 cost model counts exactly the entries the strategy reads,
    // so its relative error settles near zero.
    let merge_err = drift.ewma(DriftKind::MergeEntries);
    assert!(merge_err < 0.1, "merge entry drift {merge_err}");
    // TA's prediction is a calibrated upper bound: the measured access
    // count stays within the documented prediction factor.
    let ta_err = drift.ewma(DriftKind::TaEntries);
    assert!(
        ta_err < TA_PREDICTION_FACTOR,
        "ta entry drift {ta_err} outside the prediction factor"
    );

    // The per-strategy gauges surface in both metric renderings.
    let registry = system.metrics();
    let prom = registry.render_prometheus();
    assert!(prom.contains("trex_drift_ewma"), "drift gauges exported");
    assert!(
        prom.contains("trex_cost_model_drift_alerts_total"),
        "alert counter exported"
    );
    assert!(prom.contains("trex_build_info"), "build info gauge");
    assert!(prom.contains("trex_uptime_seconds"), "uptime gauge");
    let json = registry.render_json();
    assert!(json.contains("drift"), "drift group in JSON rendering");

    cleanup(&path);
}
