//! Crash-matrix integration test: kill the store at every injected
//! write/fsync boundary during index maintenance, reopen, and assert it
//! recovers to a consistent checkpointed state.
//!
//! The matrix runs over a real workload — a small IEEE-like corpus index
//! (checkpoint S1) followed by an RPL/ERPL materialisation ending in a
//! checkpoint (S2). For every [`CrashPoint`] we sweep the occurrence
//! counter until the workload completes uncrashed, and after each kill the
//! reopened store must equal *exactly* S1 or S2 — never a mix, never a
//! panic, never `Corrupt`:
//!
//! * `WalAppend` / `CheckpointRecord` kill the store before the log is
//!   sealed with a commit record, so recovery rolls back to S1;
//! * `WalSync` / `DataWrite` / `DataSync` / `WalTruncate` fire after the
//!   commit record hit the file (the injection simulates a killed process,
//!   not lost media writes), so recovery rolls the sealed log forward
//!   to S2.
//!
//! A double-crash case (killing recovery itself, then recovering from
//! that) closes the loop.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use trex::corpus::{CorpusConfig, IeeeGenerator};
use trex::storage::{wal_path, CrashPoint, Store, StoreOptions};
use trex::{ListKind, TrexConfig, TrexSystem};

const NEXI: &str = "//article//sec[about(., xml query evaluation)]";
const DOCS: usize = 10;

/// The paper's four tables, all of which must be readable after recovery.
const PAPER_TABLES: [&str; 4] = ["elements", "postings", "rpls", "erpls"];

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("trex-crash-{name}-{}.db", std::process::id()))
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(wal_path(path)).ok();
}

fn small_ieee() -> impl Iterator<Item = String> {
    let gen = IeeeGenerator::new(CorpusConfig {
        docs: DOCS,
        ..CorpusConfig::ieee_default()
    });
    (0..DOCS).map(move |i| gen.document(i))
}

/// Builds the base index (checkpoint S1) at `path` and closes it cleanly.
fn build_base(path: &Path) {
    cleanup(path);
    let system = TrexSystem::build(TrexConfig::new(path), small_ieee()).unwrap();
    drop(system);
}

/// Copies the cleanly-closed base store to `work` (the WAL of a clean
/// store is empty, so only the data file matters; recovery recreates it).
fn clone_store(base: &Path, work: &Path) {
    cleanup(work);
    std::fs::copy(base, work).unwrap();
}

/// Every table's full contents, via a fresh clean open. Recovery runs
/// inside this open; the test's consistency claims are claims about what
/// this dump can observe.
type Dump = BTreeMap<String, Vec<(Vec<u8>, Vec<u8>)>>;

fn dump(path: &Path) -> Dump {
    let store = Store::open(path, 128).unwrap();
    let mut out = Dump::new();
    for name in store.table_names() {
        let table = store.open_table(&name).unwrap();
        let mut cursor = table.scan().unwrap();
        let mut entries = Vec::new();
        while let Some((k, v)) = cursor.next_entry().unwrap() {
            entries.push((k, v));
        }
        out.insert(name, entries);
    }
    out
}

/// Phase 2 of the workload: materialise RPLs + ERPLs for the test query,
/// ending in a checkpoint (S2). With a crash armed, returns Err when the
/// store died before the workload finished.
fn materialize_phase(path: &Path, inject: Option<(CrashPoint, u32)>) -> Result<usize, String> {
    let system = TrexSystem::open(TrexConfig::new(path)).map_err(|e| e.to_string())?;
    if let Some((point, nth)) = inject {
        system.index().store().inject_crash(point, nth);
    }
    system
        .materialize_for(NEXI, ListKind::Both)
        .map_err(|e| e.to_string())
}

struct Matrix {
    base: PathBuf,
    s1: Dump,
    s2: Dump,
}

impl Matrix {
    fn new(tag: &str) -> Matrix {
        let base = temp(&format!("{tag}-base"));
        build_base(&base);
        let s1 = dump(&base);

        let ref2 = temp(&format!("{tag}-ref2"));
        clone_store(&base, &ref2);
        let written = materialize_phase(&ref2, None).unwrap();
        assert!(written > 0, "phase 2 must write lists");
        let s2 = dump(&ref2);
        cleanup(&ref2);

        assert_ne!(s1, s2, "the two checkpoints must be distinguishable");
        for t in PAPER_TABLES {
            assert!(s2.contains_key(t), "S2 must hold the {t} table");
        }
        Matrix { base, s1, s2 }
    }

    /// Runs phase 2 with a crash at the `nth` occurrence of `point`.
    /// Returns false when the workload completed uncrashed (occurrence
    /// sweep exhausted). Otherwise asserts the recovered store equals the
    /// checkpoint `point` is specified to land on.
    fn run(&self, work: &Path, point: CrashPoint, nth: u32, expect_s2: bool) -> bool {
        clone_store(&self.base, work);
        let result = materialize_phase(work, Some((point, nth)));
        if result.is_ok() {
            // nth exceeded the occurrence count: workload finished, the
            // store must simply be at S2.
            assert_eq!(dump(work), self.s2, "{point:?} uncrashed run");
            return false;
        }
        let err = result.unwrap_err();
        assert!(
            err.contains("injected") || err.contains("crash"),
            "{point:?} #{nth}: unexpected error {err}"
        );
        // The kill happened; a clean reopen must recover without panicking
        // and land exactly on the expected checkpoint.
        let recovered = dump(work);
        let (want, label) = if expect_s2 {
            (&self.s2, "S2")
        } else {
            (&self.s1, "S1")
        };
        assert!(
            recovered == *want,
            "{point:?} #{nth}: recovered store is not {label}"
        );
        // Every table present at that checkpoint stayed readable (dump()
        // scanned them all); the committed paper tables must not be lost.
        for t in PAPER_TABLES {
            if want.contains_key(t) {
                assert!(recovered.contains_key(t), "{point:?} #{nth}: lost {t}");
            }
        }
        true
    }

    /// Sweeps `point` occurrences (dense early, strided later — late
    /// occurrences of high-frequency points all take the same code path)
    /// until the workload completes uncrashed.
    fn sweep(&self, tag: &str, point: CrashPoint, expect_s2: bool) -> u32 {
        let work = temp(tag);
        let mut crashes = 0u32;
        let mut nth = 1u32;
        loop {
            if !self.run(&work, point, nth, expect_s2) {
                break;
            }
            crashes += 1;
            nth += if nth < 6 { 1 } else { 9 };
            assert!(nth < 10_000, "{point:?}: occurrence sweep did not converge");
        }
        cleanup(&work);
        assert!(crashes > 0, "{point:?} never fired — matrix hole");
        crashes
    }
}

#[test]
fn crash_matrix_every_point_recovers_to_a_checkpoint() {
    let m = Matrix::new("matrix");

    // Before the commit record: recovery rolls back to S1.
    m.sweep("wal-append", CrashPoint::WalAppend, false);
    m.sweep("ckpt-record", CrashPoint::CheckpointRecord, false);

    // At or after the commit record (the injection models a killed
    // process, so the record's bytes are on disk): roll forward to S2.
    m.sweep("wal-sync", CrashPoint::WalSync, true);
    m.sweep("data-write", CrashPoint::DataWrite, true);
    m.sweep("data-sync", CrashPoint::DataSync, true);
    m.sweep("wal-truncate", CrashPoint::WalTruncate, true);

    cleanup(&m.base);
}

#[test]
fn double_crash_recovery_is_idempotent() {
    let m = Matrix::new("double");
    let work = temp("double-work");

    // First kill: mid data write-back of the checkpoint, after the log was
    // sealed. The data file is torn; the sealed log can repair it.
    clone_store(&m.base, &work);
    materialize_phase(&work, Some((CrashPoint::DataWrite, 1)))
        .expect_err("first crash must kill the store");

    // Second kill: during recovery itself (its first replay write).
    let err = match Store::open_with(
        &work,
        StoreOptions {
            inject_crash: Some((CrashPoint::DataWrite, 1)),
            ..StoreOptions::default()
        },
    ) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("recovery must die at the injected point"),
    };
    assert!(err.contains("injected") || err.contains("crash"), "{err}");

    // Third open, uninjected: recovery replays the still-sealed log and
    // completes the interrupted checkpoint.
    {
        let store = Store::open(&work, 128).unwrap();
        let report = store.recovery_report().expect("recovery must have run");
        assert!(report.completed_checkpoint, "sealed log rolls forward");
        assert!(report.replayed_pages > 0);
    }
    assert_eq!(dump(&work), m.s2, "double crash still lands on S2");

    // A further reopen is clean: the log was truncated by recovery.
    {
        let store = Store::open(&work, 128).unwrap();
        assert!(store.recovery_report().is_none(), "no more work to redo");
    }

    cleanup(&work);
    cleanup(&m.base);
}

/// A live-ingested document whose paths and terms exist in the base
/// collection, so the frozen summary/dictionary can stage it and the test
/// query matches it.
const INGEST_DOC: &str = "<books><journal><article><bdy><sec><st>live</st>\
     <p>xml query evaluation freshly ingested live</p></sec></bdy></article></journal></books>";

fn ingest_phase(path: &Path, inject: Option<(CrashPoint, u32)>) -> Result<u32, String> {
    let system = TrexSystem::open(TrexConfig::new(path)).map_err(|e| e.to_string())?;
    if let Some((point, nth)) = inject {
        system.index().store().inject_crash(point, nth);
    }
    system
        .ingest_document(INGEST_DOC)
        .map_err(|e| e.to_string())
}

/// Reopens the store (running recovery) and asks whether the ingested
/// document — always the first id past the base build — is returned by the
/// matching query, whether it lives in the recovered delta or in the
/// folded-on-disk tables.
fn ingested_doc_visible(path: &Path) -> bool {
    let system = TrexSystem::open(TrexConfig::new(path)).unwrap();
    let result = system.search(NEXI, None).unwrap();
    result.answers.iter().any(|a| a.element.doc == DOCS as u32)
}

/// The two ingest tear points are all-or-nothing: a record torn mid-append
/// was never acknowledged and must vanish; a record killed during its fsync
/// is on disk (the injection models a killed process) and must be replayed
/// into the delta on reopen.
#[test]
fn ingest_tear_points_recover_all_or_nothing() {
    let base = temp("ingest-base");
    build_base(&base);
    let work = temp("ingest-work");

    // Sanity: uninjected ingest is acknowledged and survives a clean reopen.
    clone_store(&base, &work);
    let doc_id = ingest_phase(&work, None).unwrap();
    assert_eq!(doc_id as usize, DOCS, "ids continue past the base build");
    assert!(
        ingested_doc_visible(&work),
        "acknowledged ingest is queryable"
    );

    clone_store(&base, &work);
    ingest_phase(&work, Some((CrashPoint::IngestAppend, 1)))
        .expect_err("IngestAppend must kill the store");
    assert!(
        !ingested_doc_visible(&work),
        "a torn, unacknowledged ingest record must be discarded"
    );

    clone_store(&base, &work);
    ingest_phase(&work, Some((CrashPoint::IngestSync, 1)))
        .expect_err("IngestSync must kill the store");
    assert!(
        ingested_doc_visible(&work),
        "a fully-written ingest record must be replayed into the delta"
    );

    cleanup(&work);
    cleanup(&base);
}

fn ingest_then_fold(path: &Path, inject: Option<(CrashPoint, u32)>) -> Result<(), String> {
    let system = TrexSystem::open(TrexConfig::new(path)).map_err(|e| e.to_string())?;
    let doc_id = system
        .ingest_document(INGEST_DOC)
        .map_err(|e| e.to_string())?;
    assert_eq!(doc_id as usize, DOCS);
    if let Some((point, nth)) = inject {
        system.index().store().inject_crash(point, nth);
    }
    system.fold_once().map(|_| ()).map_err(|e| e.to_string())
}

/// Killing the fold's checkpoint at every injected boundary must never lose
/// the acknowledged ingest: before the commit record recovery rolls the
/// tables back and replays the still-pending WAL record into the delta;
/// after it the fold rolls forward and the document is served from disk.
/// Either way the matching query keeps returning it.
#[test]
fn fold_crash_matrix_never_loses_an_acknowledged_ingest() {
    let base = temp("fold-base");
    build_base(&base);
    let work = temp("fold-work");

    for point in [
        CrashPoint::WalAppend,
        CrashPoint::CheckpointRecord,
        CrashPoint::WalSync,
        CrashPoint::DataWrite,
        CrashPoint::DataSync,
        CrashPoint::WalTruncate,
    ] {
        let mut crashes = 0u32;
        let mut nth = 1u32;
        loop {
            clone_store(&base, &work);
            if ingest_then_fold(&work, Some((point, nth))).is_ok() {
                // Sweep exhausted: the fold completed; the doc is on disk.
                assert!(ingested_doc_visible(&work), "{point:?} uncrashed run");
                break;
            }
            crashes += 1;
            assert!(
                ingested_doc_visible(&work),
                "{point:?} #{nth}: acknowledged ingest lost across fold crash"
            );
            nth += if nth < 6 { 1 } else { 9 };
            assert!(nth < 10_000, "{point:?}: occurrence sweep did not converge");
        }
        assert!(crashes > 0, "{point:?} never fired — matrix hole");
    }

    cleanup(&work);
    cleanup(&base);
}

#[test]
fn torn_data_tail_is_repaired_by_recovery() {
    // A crash that tears the *last* page of a growing data file leaves
    // `len % PAGE_SIZE != 0`. Pre-WAL that is a hard Corrupt error (see
    // storage's failure-injection tests); with the WAL the sealed log
    // repairs it during replay.
    let m = Matrix::new("torn");
    let work = temp("torn-work");
    clone_store(&m.base, &work);

    // Kill late in the checkpoint's data write-back: page images are
    // applied in ascending page order, so a high occurrence count tears a
    // page near the end of the file — past the old length if the
    // materialisation grew the store.
    let mut nth = 1u32;
    loop {
        clone_store(&m.base, &work);
        if materialize_phase(&work, Some((CrashPoint::DataWrite, nth))).is_ok() {
            break; // swept past the last write; every tear recovered below
        }
        assert_eq!(dump(&work), m.s2, "DataWrite #{nth} must recover to S2");
        nth += 1;
        assert!(nth < 10_000, "sweep did not converge");
    }

    cleanup(&work);
    cleanup(&m.base);
}
