//! The load-bearing correctness property of the whole system: ERA, TA and
//! Merge are three implementations of the *same* retrieval semantics, so on
//! any corpus and any query they must return the same answers with the same
//! scores. Includes a property test over generated corpora.

use proptest::prelude::*;
use trex::corpus::{CorpusConfig, IeeeGenerator, WikiGenerator, PAPER_QUERIES};
use trex::{EvalOptions, ListKind, Strategy, TrexConfig, TrexSystem};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trex-equiv-{name}-{}.db", std::process::id()))
}

/// Compare two ranked answer lists: same elements, same scores (within
/// float tolerance). Ties may be ordered differently only if scores equal —
/// our tiebreak is deterministic, so we demand exact element equality.
fn assert_same_ranking(a: &[trex::Answer], b: &[trex::Answer], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.element, y.element, "{label}: rank {i} element differs");
        assert!(
            (x.score - y.score).abs() <= 1e-4 * x.score.abs().max(1.0),
            "{label}: rank {i} score {} vs {}",
            x.score,
            y.score
        );
    }
}

fn check_equivalence(system: &TrexSystem, query: &str, ks: &[usize]) {
    system.materialize_for(query, ListKind::Both).unwrap();
    let engine = system.engine();
    let eval = |strategy, k| {
        engine
            .evaluate(query, EvalOptions::new().k(k).strategy(strategy))
            .unwrap()
    };

    // All answers: ERA vs Merge.
    let era_all = eval(Strategy::Era, None);
    let merge_all = eval(Strategy::Merge, None);
    assert_eq!(era_all.total_answers, merge_all.total_answers, "{query}");
    assert_same_ranking(&era_all.answers, &merge_all.answers, query);

    // Top-k: all three agree.
    for &k in ks {
        let era = eval(Strategy::Era, Some(k));
        let ta = eval(Strategy::Ta, Some(k));
        let merge = eval(Strategy::Merge, Some(k));
        assert_same_ranking(&era.answers, &ta.answers, &format!("{query} k={k} (TA)"));
        assert_same_ranking(
            &era.answers,
            &merge.answers,
            &format!("{query} k={k} (Merge)"),
        );
    }
}

#[test]
fn strategies_agree_on_ieee_paper_queries() {
    let store = temp("ieee");
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs: 120,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )
    .unwrap();
    for q in PAPER_QUERIES
        .iter()
        .filter(|q| q.collection == trex::corpus::Collection::Ieee)
    {
        check_equivalence(&system, q.nexi, &[1, 5, 50]);
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn strategies_agree_on_wiki_paper_queries() {
    let store = temp("wiki");
    let mut config = TrexConfig::new(&store);
    config.alias = trex::AliasMap::inex_wiki();
    let system = TrexSystem::build(
        config,
        WikiGenerator::new(CorpusConfig {
            docs: 200,
            ..CorpusConfig::wiki_default()
        })
        .documents(),
    )
    .unwrap();
    for q in PAPER_QUERIES
        .iter()
        .filter(|q| q.collection == trex::corpus::Collection::Wiki)
    {
        check_equivalence(&system, q.nexi, &[1, 10, 100]);
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn strategies_agree_on_nested_wildcard_query() {
    let store = temp("wild");
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs: 80,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )
    .unwrap();
    // Wildcard query: nested extents (sec within bdy within article) mean
    // ancestor/descendant answers can share end positions — the hard case
    // for element identity.
    check_equivalence(
        &system,
        "//bdy//*[about(., model checking state space explosion)]",
        &[1, 3, 25],
    );
    std::fs::remove_file(&store).ok();
}

/// Pinned shrunken case from `strategy_equivalence.proptest-regressions`
/// (seed = 445, docs = 30, k = 26): historically ERA/TA/Merge disagreed on
/// the ranks near the bottom of the result set. The corpus yields only 17
/// answers, so k = 26 exhausts every strategy, and the tail holds near-tied
/// scores (ranks 5–6 differ by ~2e-4) plus answers sharing an element end
/// position across different sids — exactly the boundary the deterministic
/// tiebreak (score desc, element asc, sid asc; see `check_and_prune` in
/// `crates/core/src/ta.rs`) must resolve identically in all three
/// strategies. Pinned here so the coverage survives even if the
/// proptest-regressions replay file is lost.
#[test]
fn regression_seed_445_tail_ties_agree_across_strategies() {
    let store = temp("seed445");
    let system = TrexSystem::build(
        TrexConfig::new(&store),
        IeeeGenerator::new(CorpusConfig {
            docs: 30,
            seed: 445,
            ..CorpusConfig::ieee_default()
        })
        .documents(),
    )
    .unwrap();
    let query = "//article//sec[about(., xml query evaluation index)]";
    system.materialize_for(query, ListKind::Both).unwrap();
    let engine = system.engine();
    let eval = |strategy, k| {
        engine
            .evaluate(query, EvalOptions::new().k(Some(k)).strategy(strategy))
            .unwrap()
            .answers
    };

    let total = eval(Strategy::Era, usize::MAX).len();
    assert_eq!(
        total, 17,
        "corpus drifted; regression case no longer pinned"
    );

    // k below, at, and past the answer count — the shrunken case is k = 26.
    for k in [16, 17, 26] {
        let era = eval(Strategy::Era, k);
        let ta = eval(Strategy::Ta, k);
        let merge = eval(Strategy::Merge, k);
        assert_same_ranking(&era, &ta, &format!("seed445 k={k} (TA)"));
        assert_same_ranking(&era, &merge, &format!("seed445 k={k} (Merge)"));
    }
    std::fs::remove_file(&store).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random corpora (varying seed/size) × random k: the three strategies
    /// always agree.
    #[test]
    fn prop_strategies_agree(seed in 0u64..1000, docs in 20usize..60, k in 1usize..40) {
        let store = temp(&format!("prop-{seed}-{docs}-{k}"));
        let system = TrexSystem::build(
            TrexConfig::new(&store),
            IeeeGenerator::new(CorpusConfig {
                docs,
                seed,
                ..CorpusConfig::ieee_default()
            })
            .documents(),
        )
        .unwrap();
        let query = "//article//sec[about(., xml query evaluation index)]";
        system.materialize_for(query, ListKind::Both).unwrap();
        let engine = system.engine();
        let eval = |strategy| {
            engine
                .evaluate(query, EvalOptions::new().k(k).strategy(strategy))
                .unwrap()
        };
        let era = eval(Strategy::Era);
        let ta = eval(Strategy::Ta);
        let merge = eval(Strategy::Merge);
        prop_assert_eq!(era.answers.len(), ta.answers.len());
        prop_assert_eq!(era.answers.len(), merge.answers.len());
        for ((x, y), z) in era.answers.iter().zip(&ta.answers).zip(&merge.answers) {
            prop_assert_eq!(x.element, y.element);
            prop_assert_eq!(x.element, z.element);
            prop_assert!((x.score - y.score).abs() <= 1e-4 * x.score.abs().max(1.0));
            prop_assert!((x.score - z.score).abs() <= 1e-4 * x.score.abs().max(1.0));
        }
        std::fs::remove_file(&store).ok();
    }
}
