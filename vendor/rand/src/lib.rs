//! Offline substitute for the `rand` crate (0.8 API subset).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods the corpus generators use (`gen`, `gen_range`,
//! `gen_bool`). The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across runs and platforms, which is all the synthetic
//! corpora need (the streams differ from upstream rand's `StdRng`).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the standard (uniform) distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Q: SampleRange<T>>(&mut self, range: Q) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(0.0f64..2.0);
            assert!((0.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
