//! Offline substitute for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free guard API:
//! `lock()` / `read()` / `write()` return guards directly (a poisoned lock —
//! possible only after a panic while holding it — is recovered, matching
//! parking_lot's "no poisoning" semantics).

use std::sync::{self, PoisonError};

/// A mutex with parking_lot's infallible `lock()`.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock with parking_lot's infallible `read()`/`write()`.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
