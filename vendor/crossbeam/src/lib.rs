//! Offline substitute for the `crossbeam` crate: the two facilities this
//! workspace uses — `thread::scope` (delegating to `std::thread::scope`) and
//! `channel::bounded` (an MPMC blocking channel on `Mutex` + `Condvar`).

pub mod thread {
    //! Scoped threads with crossbeam's closure signature (`|scope| ...`,
    //! spawned closures receive the scope as an argument).

    /// A scope handle; spawned closures receive a reference to it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope,
        /// so it can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic on join
    /// (std semantics) instead of surfacing it in the returned `Result`; the
    /// `Ok` wrapper is kept so call sites written against crossbeam compile
    /// unchanged.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! A bounded MPMC channel: `Sender` and `Receiver` are both cloneable,
    //! `send` blocks when full, iteration blocks until a message arrives and
    //! ends when every sender is gone and the queue drains.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]: the channel was full or every
    /// receiver is gone; the message is handed back either way.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue was at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (messages are distributed, not copied).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel with room for `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.max(1)),
                senders: 1,
                receivers: 1,
            }),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.inner.cap {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }

        /// Enqueues `value` without blocking: fails with
        /// [`TrySendError::Full`] when the queue is at capacity (the basis
        /// of bounded-queue admission control).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.inner.cap {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when the channel is drained
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Blocking iterator over messages; ends when the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_and_channel_round_trip() {
        let (tx, rx) = crate::channel::bounded::<u32>(2);
        let sum = crate::thread::scope(|scope| {
            for i in 0..4u32 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            rx.iter().sum::<u32>()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = crate::channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use crate::channel::TrySendError;
        let (tx, rx) = crate::channel::bounded::<u8>(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn multiple_receivers_split_messages() {
        let (tx, rx1) = crate::channel::bounded::<u8>(8);
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
        assert!(rx1.recv().is_err());
    }
}
