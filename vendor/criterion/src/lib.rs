//! Offline substitute for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup` with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId`, and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery this harness times
//! `sample_size` samples (after one warm-up call) and prints min / median /
//! mean per benchmark — enough to compare strategies and spot regressions
//! without any external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter, rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> BenchmarkId {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &mut bencher.durations);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id, &mut bencher.durations);
        self
    }

    fn report(&mut self, id: &BenchmarkId, durations: &mut [Duration]) {
        let full = format!("{}/{}", self.name, id.render());
        if durations.is_empty() {
            println!("{full:<56} (no samples)");
            return;
        }
        durations.sort_unstable();
        let min = durations[0];
        let median = durations[durations.len() / 2];
        let total: Duration = durations.iter().sum();
        let mean = total / durations.len() as u32;
        println!(
            "{full:<56} min {:>12} med {:>12} mean {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            durations.len(),
        );
        self.criterion.results.push(BenchResult {
            name: full,
            min,
            median,
            mean,
            samples: durations.len(),
        });
    }

    /// Ends the group (printing happens incrementally).
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// One finished benchmark's summary statistics.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function[/parameter]`.
    pub name: String,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// All results recorded so far (used by in-tree exporters).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Bundles benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        assert_eq!(criterion.results().len(), 2);
        assert_eq!(criterion.results()[0].samples, 5);
        assert!(criterion.results()[1].name.contains("sum_to/50"));
    }
}
