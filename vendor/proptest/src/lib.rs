//! Offline substitute for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`,
//! regex-like string strategies (character classes, `\PC`, `{m,n}`
//! repetition), collection / option / sample strategies, `prop_oneof!`, and
//! the `proptest!` / `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline tree:
//! failing inputs are **not shrunk** (the failing value is printed as
//! generated), and case generation uses a fixed per-test seed derived from
//! the test name, so runs are deterministic across machines.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of type `Value`.
    ///
    /// Object safe: the combinators are `Self: Sized`, so
    /// `dyn Strategy<Value = T>` (as used by [`BoxedStrategy`]) only needs
    /// [`Strategy::generate`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Maps generated values to a *strategy* and draws from it —
        /// dependent generation (e.g. an index into a just-generated vec).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves and `rec`
        /// lifts a strategy for depth-`d` values to depth-`d+1` values.
        ///
        /// `desired_size` and `expected_branch_size` are accepted for API
        /// compatibility; only `depth` bounds the recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            rec: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                rec: Arc::new(move |inner| rec(inner).boxed()),
            }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        #[allow(clippy::type_complexity)]
        rec: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            // Pick a nesting level, then fold the recursion that many times
            // around the leaf strategy. Bias toward shallow values the way
            // upstream does (deep cases still occur regularly).
            let levels = rng.below(self.depth as u64 + 1) as u32;
            let mut strat = self.base.clone();
            for _ in 0..levels {
                strat = (self.rec)(strat);
            }
            strat.generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union over same-valued strategies; used by `prop_oneof!`.
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `arms` is empty or all weights are 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, strat) in &self.arms {
                if pick < *w as u64 {
                    return strat.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    (start as i128 + rng.below_inclusive(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Regex-like string strategies: a `&'static str` pattern is itself a
    /// strategy producing `String`.
    ///
    /// Supported syntax (the subset this workspace's tests use): literal
    /// characters, character classes `[a-z0-9 ,.]` with ranges, the `\PC`
    /// escape (any non-control character), and `{m,n}` / `{n}` repetition of
    /// the preceding atom.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (atom, lo, hi) in &atoms {
                let count = *lo as u64 + rng.below_inclusive((hi - lo) as u64);
                for _ in 0..count {
                    out.push(atom.pick(rng));
                }
            }
            out
        }
    }

    enum Atom {
        Class(Vec<char>),
        NonControl,
    }

    impl Atom {
        fn pick(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
                Atom::NonControl => {
                    // Mostly printable ASCII, with a sprinkling of wider
                    // Unicode so `\PC` tests see multi-byte input.
                    const EXOTIC: &[char] =
                        &['é', 'ß', 'λ', 'Ж', '中', '☃', '🦀', '\u{00a0}', 'ñ', '𝒳'];
                    if rng.below(8) == 0 {
                        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                    } else {
                        char::from(0x20 + rng.below(0x5f) as u8)
                    }
                }
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut members = Vec::new();
                    let mut prev: Option<char> = None;
                    while let Some(m) = chars.next() {
                        match m {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                                // Range: prev already pushed; extend to end.
                                let start = prev.take().unwrap();
                                let end = chars.next().unwrap();
                                for code in (start as u32 + 1)..=(end as u32) {
                                    members.extend(char::from_u32(code));
                                }
                            }
                            other => {
                                members.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    assert!(!members.is_empty(), "empty character class in {pattern:?}");
                    Atom::Class(members)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        assert_eq!(chars.next(), Some('C'), "unsupported escape in {pattern:?}");
                        Atom::NonControl
                    }
                    Some(esc) => Atom::Class(vec![esc]),
                    None => panic!("dangling backslash in {pattern:?}"),
                },
                literal => Atom::Class(vec![literal]),
            };
            // Optional {m,n} / {n} repetition.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition"),
                        hi.parse().expect("bad repetition"),
                    ),
                    None => {
                        let n: u32 = spec.parse().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "inverted repetition in {pattern:?}");
            atoms.push((atom, lo, hi));
        }
        atoms
    }
}

pub mod arbitrary {
    //! Default strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from(0x20 + rng.below(0x5f) as u8)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: a fixed size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below_inclusive((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets whose size falls in `size` (best effort: if the
    /// element strategy cannot produce enough distinct values the set is
    /// smaller).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 4 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Picks uniformly from `items`; panics if empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty collection");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    //! Configuration, the deterministic RNG, and the case-runner loop used by
    //! the `proptest!` macro.

    /// Per-block configuration; only `cases` is honoured by this substitute.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before the run fails.
        pub max_global_rejects: u32,
        /// Accepted for upstream compatibility; shrinking never runs here.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The input was rejected by `prop_assume!`; another is generated.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }

        /// A rejected-input error.
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(message.into())
        }
    }

    /// Deterministic generator (SplitMix64) used for all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, bound]`.
        pub fn below_inclusive(&mut self, bound: u64) -> u64 {
            if bound == u64::MAX {
                self.next_u64()
            } else {
                self.next_u64() % (bound + 1)
            }
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs `f` against `config.cases` generated inputs. Called by the
    /// `proptest!` macro; not part of the upstream API.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut f: F)
    where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        // Fixed seed per test name: deterministic, but decorrelated between
        // tests so sibling properties don't see identical streams.
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        let mut rng = TestRng::new(seed);

        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            let rendered = format!("{value:?}");
            match f(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest {name}: too many inputs rejected by prop_assume! \
                             ({rejected} rejections, {passed} cases passed)"
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest {name}: case #{n} failed: {message}\n\
                         input: {rendered}",
                        n = passed + 1
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: traits, common types, and the macros.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn` becomes a `#[test]` that generates
/// inputs from the given strategies and fails on the first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_parens)]
            fn $name() {
                let config = $cfg;
                let strategy = ($($strat),+);
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    strategy,
                    |($($pat),+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking
/// directly) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside `proptest!`; operands are taken by reference.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                        format!($($fmt)+), left, right
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside `proptest!`; operands are taken by reference.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
}

/// Rejects the current input inside `proptest!`; the runner draws another.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Picks among several strategies producing the same value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = crate::strategy::Strategy::generate(&"[ -~]{0,20}", &mut rng);
            assert!(t.len() <= 20);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));

            let u = crate::strategy::Strategy::generate(&"\\PC{0,30}", &mut rng);
            assert!(u.chars().count() <= 30);
            assert!(u.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_round_trip(v in crate::collection::vec(0u8..10, 0..5), flag in any::<bool>()) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(v.len(), v.iter().filter(|x| **x <= 9).count());
            let _ = flag;
        }

        #[test]
        fn oneof_and_recursion_generate(n in prop_oneof![2 => 0u32..5, 1 => Just(9u32)]) {
            prop_assert!(n < 5 || n == 9);
        }
    }

    #[test]
    fn flat_map_draws_from_the_dependent_strategy() {
        use crate::strategy::Strategy;
        let strat = (1u32..50).prop_flat_map(|hi| (Just(hi), 0..hi));
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let (hi, n) = strat.generate(&mut rng);
            assert!(n < hi, "{n} vs bound {hi}");
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(7);
        let mut saw_node = false;
        for _ in 0..100 {
            if matches!(strat.generate(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }
}
